//===- dimacs_test.cpp - DIMACS / WCNF reader tests --------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// The reader against its three duties: round-tripping what DimacsWriter
// emits, rejecting malformed input with precise diagnostics, and feeding
// the checked-in MaxSAT-Evaluation instances through the `bugassist
// maxsat` CLI end to end.
//
//===----------------------------------------------------------------------===//

#include "CliTestUtils.h"
#include "cnf/DimacsReader.h"
#include "cnf/DimacsWriter.h"
#include "maxsat/MaxSat.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <unistd.h>

using namespace bugassist;

namespace {

DimacsInstance parseOk(const std::string &Text) {
  DimacsParseError Err;
  auto Inst = parseDimacs(Text, Err);
  EXPECT_TRUE(Inst.has_value()) << Err.render();
  return Inst ? *Inst : DimacsInstance{};
}

DimacsParseError parseBad(const std::string &Text) {
  DimacsParseError Err;
  auto Inst = parseDimacs(Text, Err);
  EXPECT_FALSE(Inst.has_value()) << "expected a parse error";
  return Err;
}

} // namespace

// --- well-formed inputs ------------------------------------------------------

TEST(DimacsReader, PlainCnf) {
  DimacsInstance I = parseOk("c a comment\n"
                             "p cnf 3 2\n"
                             "1 -2 0\n"
                             "-1 2 3 0\n");
  EXPECT_FALSE(I.Weighted);
  EXPECT_EQ(I.NumVars, 3);
  ASSERT_EQ(I.Hard.size(), 2u);
  EXPECT_TRUE(I.Soft.empty());
  EXPECT_EQ(I.Hard[0], (Clause{mkLit(0), mkLit(1, true)}));
  EXPECT_EQ(I.Hard[1], (Clause{mkLit(0, true), mkLit(1), mkLit(2)}));
}

TEST(DimacsReader, ClausesMaySpanLines) {
  DimacsInstance I = parseOk("p cnf 4 1\n1 2\n3\n-4 0\n");
  ASSERT_EQ(I.Hard.size(), 1u);
  EXPECT_EQ(I.Hard[0].size(), 4u);
}

TEST(DimacsReader, CommentsBetweenClauses) {
  DimacsInstance I = parseOk("p cnf 2 2\nc mid-file comment\n1 0\n"
                             "c another\n2 0\n");
  EXPECT_EQ(I.Hard.size(), 2u);
}

TEST(DimacsReader, ClassicWcnfSplitsHardAndSoft) {
  DimacsInstance I = parseOk("p wcnf 2 4 10\n"
                             "10 1 2 0\n"
                             "2 -1 0\n"
                             "3 -2 0\n"
                             "4 -1 -2 0\n");
  EXPECT_TRUE(I.Weighted);
  EXPECT_EQ(I.Top, 10u);
  ASSERT_EQ(I.Hard.size(), 1u);
  ASSERT_EQ(I.Soft.size(), 3u);
  EXPECT_EQ(I.Soft[0].Weight, 2u);
  EXPECT_EQ(I.Soft[1].Weight, 3u);
  EXPECT_EQ(I.Soft[2].Weight, 4u);
  EXPECT_EQ(I.softWeightSum(), 9u);
}

TEST(DimacsReader, WeightAboveTopIsHard) {
  DimacsInstance I = parseOk("p wcnf 1 2 5\n7 1 0\n1 -1 0\n");
  EXPECT_EQ(I.Hard.size(), 1u);
  EXPECT_EQ(I.Soft.size(), 1u);
}

TEST(DimacsReader, OldStyleWcnfWithoutTopIsAllSoft) {
  DimacsInstance I = parseOk("p wcnf 2 2\n3 1 0\n1 -1 2 0\n");
  EXPECT_TRUE(I.Weighted);
  EXPECT_TRUE(I.Hard.empty());
  ASSERT_EQ(I.Soft.size(), 2u);
  EXPECT_EQ(I.Soft[0].Weight, 3u);
}

TEST(DimacsReader, NewFormatWcnfWithoutHeader) {
  DimacsInstance I = parseOk("c 2022+ MaxSAT-Evaluation format\n"
                             "h 1 2 0\n"
                             "3 -1 0\n"
                             "h -2 0\n");
  EXPECT_TRUE(I.Weighted);
  EXPECT_EQ(I.NumVars, 2); // inferred from the literals
  EXPECT_EQ(I.Hard.size(), 2u);
  ASSERT_EQ(I.Soft.size(), 1u);
  EXPECT_EQ(I.Soft[0].Weight, 3u);
}

TEST(DimacsReader, EmptyClauseIsAccepted) {
  DimacsInstance I = parseOk("p cnf 1 1\n0\n");
  ASSERT_EQ(I.Hard.size(), 1u);
  EXPECT_TRUE(I.Hard[0].empty());
}

// --- round trips through DimacsWriter ----------------------------------------

namespace {

CnfFormula makeGroupedFormula() {
  CnfFormula F;
  Var A = F.newVar(), B = F.newVar(), C = F.newVar();
  F.addClause(mkLit(A), mkLit(B));
  F.addClause(mkLit(A, true), mkLit(C));
  GroupId G1 = F.newGroup(10, "stmt1", 2);
  F.addGroupedClause(G1, {mkLit(B, true), mkLit(C)});
  GroupId G2 = F.newGroup(11, "stmt2", 5);
  F.addGroupedClause(G2, {mkLit(C, true)});
  return F;
}

} // namespace

TEST(DimacsReader, RoundTripsWriteDimacs) {
  CnfFormula F = makeGroupedFormula();
  DimacsInstance I = parseOk(writeDimacs(F));
  EXPECT_FALSE(I.Weighted);
  EXPECT_EQ(I.NumVars, F.numVars());
  ASSERT_EQ(I.Hard.size(), F.numClauses());
  for (size_t K = 0; K < I.Hard.size(); ++K)
    EXPECT_EQ(I.Hard[K], F.hardClauses()[K]) << "clause " << K;
}

TEST(DimacsReader, RoundTripsWriteWcnf) {
  CnfFormula F = makeGroupedFormula();
  DimacsInstance I = parseOk(writeWcnf(F));
  EXPECT_TRUE(I.Weighted);
  // Top = 1 + sum of group weights (2 + 5).
  EXPECT_EQ(I.Top, 8u);
  ASSERT_EQ(I.Hard.size(), F.numClauses());
  for (size_t K = 0; K < I.Hard.size(); ++K)
    EXPECT_EQ(I.Hard[K], F.hardClauses()[K]) << "clause " << K;
  // The soft side comes back as the selector units with group weights.
  ASSERT_EQ(I.Soft.size(), F.numGroups());
  for (size_t G = 0; G < I.Soft.size(); ++G) {
    EXPECT_EQ(I.Soft[G].Weight, F.group(static_cast<GroupId>(G)).Weight);
    EXPECT_EQ(I.Soft[G].Lits,
              Clause{F.selectorLit(static_cast<GroupId>(G))});
  }
}

// --- malformed inputs ---------------------------------------------------------

TEST(DimacsReader, RejectsEmptyInput) {
  DimacsParseError E = parseBad("");
  EXPECT_EQ(E.Line, 0u);
  E = parseBad("c only comments\nc nothing else\n");
  EXPECT_NE(E.Message.find("empty"), std::string::npos);
}

TEST(DimacsReader, RejectsBadHeader) {
  DimacsParseError E = parseBad("p dnf 3 2\n1 0\n");
  EXPECT_EQ(E.Line, 1u);
  EXPECT_NE(E.Message.find("bad header"), std::string::npos);

  E = parseBad("p cnf -3 2\n");
  EXPECT_EQ(E.Line, 1u);

  E = parseBad("p cnf 3\n");
  EXPECT_EQ(E.Line, 1u);

  E = parseBad("c leading comment\np wcnf 2 1 0\n1 1 0\n");
  EXPECT_EQ(E.Line, 2u);
  EXPECT_NE(E.Message.find("top"), std::string::npos);
}

TEST(DimacsReader, RejectsLiteralOutOfRange) {
  DimacsParseError E = parseBad("p cnf 3 1\n1 -4 0\n");
  EXPECT_EQ(E.Line, 2u);
  EXPECT_NE(E.Message.find("out of range"), std::string::npos);
  EXPECT_NE(E.Message.find("-4"), std::string::npos);
}

TEST(DimacsReader, RejectsMissingTerminatingZero) {
  DimacsParseError E = parseBad("p cnf 3 1\n1 2 3\n");
  EXPECT_EQ(E.Line, 2u); // reported at the clause's first token
  EXPECT_NE(E.Message.find("terminating 0"), std::string::npos);
}

TEST(DimacsReader, RejectsTrailingGarbage) {
  DimacsParseError E = parseBad("p cnf 3 1\n1 2 x 0\n");
  EXPECT_EQ(E.Line, 2u);
  EXPECT_NE(E.Message.find("'x'"), std::string::npos);
}

TEST(DimacsReader, RejectsClauseCountMismatch) {
  // Fewer clauses than declared.
  DimacsParseError E = parseBad("p cnf 2 3\n1 0\n2 0\n");
  EXPECT_EQ(E.Line, 0u);
  EXPECT_NE(E.Message.find("declares 3"), std::string::npos);
  // More clauses than declared: reported at the first extra clause.
  E = parseBad("p cnf 2 1\n1 0\n2 0\n");
  EXPECT_EQ(E.Line, 3u);
}

TEST(DimacsReader, RejectsBadWeights) {
  DimacsParseError E = parseBad("p wcnf 2 1 5\n0 1 0\n");
  EXPECT_EQ(E.Line, 2u);
  EXPECT_NE(E.Message.find("positive"), std::string::npos);

  E = parseBad("p wcnf 2 1 5\n99999999999999999999 1 0\n");
  EXPECT_EQ(E.Line, 2u);
  EXPECT_NE(E.Message.find("overflow"), std::string::npos);

  // 'h' is the new format's marker; with a p-line it is malformed.
  E = parseBad("p wcnf 2 1 5\nh 1 0\n");
  EXPECT_EQ(E.Line, 2u);
}

TEST(DimacsReader, RejectsSoftWeightSumOverflow) {
  // Each weight fits in 64 bits, but their SUM does not: the reader must
  // diagnose the overflow instead of silently wrapping the optimum.
  DimacsParseError E = parseBad("p wcnf 1 2\n"
                                "18446744073709551615 1 0\n"
                                "1 -1 0\n");
  EXPECT_EQ(E.Line, 3u);
  EXPECT_NE(E.Message.find("total soft clause weight"), std::string::npos);

  // Many mid-size weights overflow just the same as one huge one.
  E = parseBad("p wcnf 1 3\n"
               "9223372036854775807 1 0\n"
               "9223372036854775807 -1 0\n"
               "2 1 0\n");
  EXPECT_EQ(E.Line, 4u);
  EXPECT_NE(E.Message.find("overflow"), std::string::npos);

  // A sum of exactly UINT64_MAX is still legal (the new-format
  // sentinel-weight case below depends on it).
  DimacsInstance Inst = parseOk("18446744073709551615 1 0\n"
                                "h -1 0\n");
  ASSERT_EQ(Inst.Soft.size(), 1u);
  EXPECT_EQ(Inst.Soft[0].Weight, UINT64_MAX);
}

TEST(DimacsReader, ReadDimacsFileReportsMissingFile) {
  DimacsParseError Err;
  auto I = readDimacsFile("/nonexistent/definitely_not_here.cnf", Err);
  EXPECT_FALSE(I.has_value());
  EXPECT_EQ(Err.Line, 0u);
  EXPECT_NE(Err.Message.find("cannot open"), std::string::npos);
}

// --- parsed instances through the MaxSAT engines ------------------------------

TEST(DimacsReader, ParsedWcnfSolvesToKnownOptimum) {
  DimacsInstance D = parseOk("p wcnf 2 4 10\n"
                             "10 1 2 0\n"
                             "2 -1 0\n"
                             "3 -2 0\n"
                             "4 -1 -2 0\n");
  bool AnyWeight = false;
  MaxSatResult R = solveLinear(toMaxSatInstance(D, &AnyWeight));
  EXPECT_TRUE(AnyWeight);
  EXPECT_EQ(R.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(R.Cost, 2u);
}

TEST(DimacsReader, ParsedUnsatHardReportsHardUnsat) {
  DimacsInstance D = parseOk("p wcnf 2 4 8\n"
                             "8 1 0\n8 -1 2 0\n8 -2 0\n1 1 2 0\n");
  MaxSatResult R = solveFuMalik(toMaxSatInstance(D));
  EXPECT_EQ(R.Status, MaxSatStatus::HardUnsat);
}

TEST(DimacsReader, SentinelTopNeverMakesWeightsHard) {
  // 2022 format: even a maximal uint64 weight is still a soft clause --
  // only 'h' marks hardness when there is no real top.
  DimacsInstance D = parseOk("18446744073709551615 1 0\nh -1 0\n");
  EXPECT_EQ(D.Hard.size(), 1u);
  EXPECT_EQ(D.Soft.size(), 1u);

  // Same shape with a solvable weight: the optimum falsifies the soft
  // clause at its full weight instead of reporting HardUnsat.
  DimacsInstance D2 = parseOk("1000000 1 0\nh -1 0\n");
  MaxSatResult R = solveLinear(toMaxSatInstance(D2));
  EXPECT_EQ(R.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(R.Cost, 1000000u);
}

// --- end-to-end through the bugassist CLI -------------------------------------

using clitest::Cli;
using clitest::Instances;
using clitest::runCommand;

TEST(BugassistCli, MaxsatKnownOptima) {
  int Exit = 0;
  // Hard-only instance: satisfiable hard clauses, optimum 0.
  std::string Out =
      runCommand(Cli + " maxsat " + Instances + "/hard_only.wcnf", Exit);
  EXPECT_EQ(Exit, 0);
  EXPECT_NE(Out.find("o 0\ns OPTIMUM FOUND\n"), std::string::npos) << Out;

  // Weighted instance: known optimum 2.
  Out = runCommand(Cli + " maxsat " + Instances + "/weighted.wcnf", Exit);
  EXPECT_EQ(Exit, 0);
  EXPECT_NE(Out.find("o 2\ns OPTIMUM FOUND\n"), std::string::npos) << Out;

  // The portfolio must agree with the single session.
  Out = runCommand(
      Cli + " maxsat " + Instances + "/weighted.wcnf --threads 2", Exit);
  EXPECT_EQ(Exit, 0);
  EXPECT_NE(Out.find("o 2\ns OPTIMUM FOUND\n"), std::string::npos) << Out;

  // UNSAT hard part.
  Out = runCommand(Cli + " maxsat " + Instances + "/unsat_hard.wcnf", Exit);
  EXPECT_EQ(Exit, 0);
  EXPECT_NE(Out.find("s UNSATISFIABLE\n"), std::string::npos) << Out;
}

TEST(BugassistCli, MaxsatRejectsMalformedFile) {
  char Path[] = "/tmp/bugassist_dimacs_XXXXXX";
  int Fd = mkstemp(Path);
  ASSERT_GE(Fd, 0);
  const char *Bad = "p cnf 2 1\n1 -3 0\n";
  ASSERT_EQ(write(Fd, Bad, strlen(Bad)), static_cast<ssize_t>(strlen(Bad)));
  close(Fd);
  int Exit = 0;
  runCommand(Cli + " maxsat " + Path + " 2>/dev/null", Exit);
  EXPECT_NE(Exit, 0);
  std::remove(Path);
}
