//===- reduce_test.cpp - Trace reduction tests (Section 6.2) ----------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "reduce/Concretizer.h"
#include "reduce/DeltaDebug.h"
#include "reduce/Slicer.h"

#include "bmc/TraceFormula.h"
#include "bmc/Unroller.h"
#include "core/BugAssist.h"
#include "interp/Interpreter.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace bugassist;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagEngine Diags;
  auto P = parseAndAnalyze(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.render();
  return P;
}

} // namespace

// --- slicing ("S") ----------------------------------------------------------------

TEST(Slicer, DropsIrrelevantComputation) {
  // z-chain is dead relative to the assertion on y.
  const char *Src = "int main(int x) {\n"
                    "  int y = x + 1;\n"
                    "  int z = x * 17;\n"
                    "  z = z + 3;\n"
                    "  z = z * z;\n"
                    "  assert(y > x);\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  UnrolledProgram UP = unrollProgram(*P, "main");
  SliceStats Stats;
  UnrolledProgram Sliced = sliceProgram(UP, &Stats);
  EXPECT_EQ(Stats.AssignsBefore, 5u); // y, z, z, z, return
  EXPECT_LE(Stats.AssignsAfter, 2u);  // y and the return at most
  EXPECT_LT(Stats.DefsAfter, Stats.DefsBefore);
}

TEST(Slicer, KeepsEverythingTheSpecNeeds) {
  const char *Src = "int main(int x) {\n"
                    "  int a = x + 1;\n"
                    "  int b = a * 2;\n"
                    "  assert(b != 4);\n"
                    "  return b;\n"
                    "}\n";
  auto P = compile(Src);
  UnrolledProgram UP = unrollProgram(*P, "main");
  SliceStats Stats;
  UnrolledProgram Sliced = sliceProgram(UP, &Stats);
  EXPECT_EQ(Stats.AssignsBefore, Stats.AssignsAfter)
      << "nothing here is dead";
}

TEST(Slicer, SlicedFormulaStillLocalizes) {
  const char *Src = "int main(int x) {\n"
                    "  int noise = x * 31;\n"
                    "  noise = noise + noise;\n"
                    "  int y = x + 2;\n" // bug: should be x + 1
                    "  assert(y == x + 1);\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  UnrolledProgram UP = unrollProgram(*P, "main");
  UnrolledProgram Sliced = sliceProgram(UP);
  TraceFormula TF(encodeProgram(Sliced, EncodeOptions{}));
  LocalizationReport R =
      localizeFault(TF, {InputValue::scalar(0)}, Spec{});
  ASSERT_FALSE(R.Diagnoses.empty());
  bool Line4 = false;
  for (uint32_t L : R.AllLines)
    Line4 |= L == 4;
  EXPECT_TRUE(Line4) << "bug line must survive slicing";
  // Noise lines cannot be blamed (they are not even encoded).
  for (uint32_t L : R.AllLines) {
    EXPECT_NE(L, 2u);
    EXPECT_NE(L, 3u);
  }
}

TEST(Slicer, InputsAlwaysSurvive) {
  const char *Src = "int main(int x, int unused) {\n"
                    "  assert(x >= 0 || x < 0);\n"
                    "  return x;\n"
                    "}\n";
  auto P = compile(Src);
  UnrolledProgram UP = unrollProgram(*P, "main");
  UnrolledProgram Sliced = sliceProgram(UP);
  size_t Inputs = 0;
  for (const TraceDef &D : Sliced.Defs)
    if (D.Role == DefRole::Input)
      ++Inputs;
  EXPECT_EQ(Inputs, 2u) << "input binding requires every input def";
  // And the sliced encoding still evaluates tests.
  TraceFormula TF(encodeProgram(Sliced, EncodeOptions{}));
  auto Out = TF.evaluateTest({InputValue::scalar(3), InputValue::scalar(9)});
  ASSERT_TRUE(Out && Out->Feasible);
  EXPECT_EQ(Out->RetValue, 3);
}

// --- concretization ("C") -------------------------------------------------------

TEST(Concretizer, TrustedCircuitsBecomeConstants) {
  const char *Src =
      "int digest(int x) { int h = x * 31; h = h + (x >> 2); return h ^ 7; }\n"
      "int main(int x) {\n"
      "  int d = digest(12);\n"
      "  int y = x + d;\n"
      "  assert(y != 100);\n"
      "  return y;\n"
      "}\n";
  auto P = compile(Src);
  UnrollOptions UO;
  UO.TrustedFunctions.insert("digest");
  UO.ConcreteInputs = InputVector{InputValue::scalar(1)};
  UnrolledProgram UP = unrollProgram(*P, "main", UO);

  EXPECT_GT(countConcretizableDefs(UP), 0u);
  ReductionReport R = measureConcretization(UP);
  EXPECT_LT(R.ClausesAfter, R.ClausesBefore);
  EXPECT_LT(R.VarsAfter, R.VarsBefore);
  EXPECT_LT(R.AssignsAfter, R.AssignsBefore);
}

TEST(Concretizer, ConcretizedFormulaAgreesOnSeedInput) {
  const char *Src =
      "int table(int k) { return k * k + 3; }\n"
      "int main(int x) {\n"
      "  int t = table(5);\n"
      "  return t + x;\n"
      "}\n";
  auto P = compile(Src);
  UnrollOptions UO;
  UO.TrustedFunctions.insert("table");
  UO.ConcreteInputs = InputVector{InputValue::scalar(4)};
  UnrolledProgram UP = unrollProgram(*P, "main", UO);
  EncodeOptions EO;
  EO.ConcretizeTrusted = true;
  TraceFormula TF(encodeProgram(UP, EO));
  auto Out = TF.evaluateTest({InputValue::scalar(4)});
  ASSERT_TRUE(Out && Out->Feasible);
  EXPECT_EQ(Out->RetValue, 32); // 28 + 4
}

// --- delta debugging ("D") -------------------------------------------------------

TEST(DeltaDebug, MinimizesArrayInput) {
  // Fails iff element 3 is 7, regardless of the rest.
  const char *Src = "int main(int a[6]) {\n"
                    "  assert(a[3] != 7);\n"
                    "  return a[0];\n"
                    "}\n";
  auto P = compile(Src);
  Interpreter I(*P, ExecOptions{16});
  auto Fails = [&](const InputVector &In) {
    return I.run("main", In).Status == ExecStatus::AssertFail;
  };
  InputVector Failing{InputValue::array({9, 8, 1, 7, 2, 5})};
  ASSERT_TRUE(Fails(Failing));
  DdminStats Stats;
  InputVector Min = minimizeFailingInput(Failing, Fails, &Stats);
  EXPECT_TRUE(Fails(Min));
  // Only the one relevant atom survives.
  EXPECT_EQ(Stats.AtomsAfter, 1u);
  EXPECT_EQ(Min[0].Array[3], 7);
  EXPECT_EQ(Min[0].Array[0], 0);
}

TEST(DeltaDebug, MinimizesAcrossMultipleParams) {
  // Fails iff x + y == 12 with x, y nonzero: ddmin cannot drop either, but
  // must drop the irrelevant z.
  const char *Src = "int main(int x, int y, int z) {\n"
                    "  assert(x + y != 12);\n"
                    "  return z;\n"
                    "}\n";
  auto P = compile(Src);
  Interpreter I(*P, ExecOptions{16});
  auto Fails = [&](const InputVector &In) {
    return I.run("main", In).Status == ExecStatus::AssertFail;
  };
  InputVector Failing{InputValue::scalar(5), InputValue::scalar(7),
                      InputValue::scalar(99)};
  DdminStats Stats;
  InputVector Min = minimizeFailingInput(Failing, Fails, &Stats);
  EXPECT_TRUE(Fails(Min));
  EXPECT_EQ(Min[2].Scalar, 0) << "z is irrelevant";
  EXPECT_EQ(Min[0].Scalar, 5);
  EXPECT_EQ(Min[1].Scalar, 7);
  EXPECT_EQ(Stats.AtomsAfter, 2u);
}

TEST(DeltaDebug, OneMinimality) {
  // Failure needs all three of the first atoms.
  const char *Src = "int main(int a[5]) {\n"
                    "  assert(a[0] + a[1] + a[2] != 6);\n"
                    "  return 0;\n"
                    "}\n";
  auto P = compile(Src);
  Interpreter I(*P, ExecOptions{16});
  auto Fails = [&](const InputVector &In) {
    return I.run("main", In).Status == ExecStatus::AssertFail;
  };
  InputVector Failing{InputValue::array({1, 2, 3, 4, 5})};
  DdminStats Stats;
  InputVector Min = minimizeFailingInput(Failing, Fails, &Stats);
  EXPECT_TRUE(Fails(Min));
  EXPECT_EQ(Stats.AtomsAfter, 3u);
  EXPECT_EQ(Min[0].Array[3], 0);
  EXPECT_EQ(Min[0].Array[4], 0);
}

TEST(DeltaDebug, ShrinksLoopTraceForLocalization) {
  // The Table 3 schedule scenario in miniature: a loop consumes the input
  // until a sentinel; a large failing input minimizes to just the
  // sentinel, and the trace formula shrinks accordingly.
  const char *Src = "int main(int a[8]) {\n"
                    "  int k = 0;\n"
                    "  int bad = 0;\n"
                    "  while (k < 8) {\n"
                    "    if (a[k] == 5) bad = bad + 1;\n"
                    "    k = k + 1;\n"
                    "  }\n"
                    "  assert(bad == 0);\n"
                    "  return bad;\n"
                    "}\n";
  auto P = compile(Src);
  Interpreter I(*P, ExecOptions{16});
  auto Fails = [&](const InputVector &In) {
    return I.run("main", In).Status == ExecStatus::AssertFail;
  };
  InputVector Failing{InputValue::array({1, 2, 5, 3, 4, 9, 8, 7})};
  InputVector Min = minimizeFailingInput(Failing, Fails);
  size_t NonZero = 0;
  for (int64_t V : Min[0].Array)
    NonZero += V != 0;
  EXPECT_EQ(NonZero, 1u);
}
