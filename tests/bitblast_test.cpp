//===- bitblast_test.cpp - Circuit correctness tests ----------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Every word-level circuit is checked against the interpreter's reference
// semantics (evalBinaryOp / evalUnaryOp): exhaustively at width 4, randomly
// at width 8. This is the contract that makes encoder and interpreter
// interchangeable oracles.
//
//===----------------------------------------------------------------------===//

#include "bmc/BitBlaster.h"

#include "interp/Interpreter.h"
#include "sat/Solver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace bugassist;

namespace {

/// Harness: builds a circuit over two symbolic input words, pins them with
/// assumptions, solves, and reads the output back.
class CircuitHarness {
public:
  explicit CircuitHarness(int Width) : BB(F, Width), Width(Width) {
    A = BB.freshWord();
    B = BB.freshWord();
  }

  BitBlaster &blaster() { return BB; }
  const Word &a() const { return A; }
  const Word &b() const { return B; }

  /// Evaluates the previously built output word for concrete inputs.
  int64_t evalWord(const Word &Out, int64_t AV, int64_t BV) {
    Solver S;
    EXPECT_TRUE(S.addFormula(F));
    std::vector<Lit> Assumps = pinWord(A, AV);
    for (Lit L : pinWord(B, BV))
      Assumps.push_back(L);
    EXPECT_EQ(S.solve(Assumps), LBool::True);
    int64_t V = 0;
    for (int I = 0; I < Width; ++I)
      if (S.modelValue(Out[I]) == LBool::True)
        V |= (1ll << I);
    if (V & (1ll << (Width - 1)))
      V |= ~((1ll << Width) - 1);
    return V;
  }

  bool evalBit(Lit Out, int64_t AV, int64_t BV) {
    Solver S;
    EXPECT_TRUE(S.addFormula(F));
    std::vector<Lit> Assumps = pinWord(A, AV);
    for (Lit L : pinWord(B, BV))
      Assumps.push_back(L);
    EXPECT_EQ(S.solve(Assumps), LBool::True);
    return S.modelValue(Out) == LBool::True;
  }

private:
  std::vector<Lit> pinWord(const Word &W, int64_t V) {
    std::vector<Lit> Ls;
    for (int I = 0; I < Width; ++I)
      Ls.push_back(((V >> I) & 1) ? W[I] : ~W[I]);
    return Ls;
  }

  CnfFormula F;
  BitBlaster BB;
  int Width;
  Word A, B;
};

int64_t wrap4(int64_t V) { return wrapToWidth(V, 4); }

/// All signed 4-bit values.
std::vector<int64_t> allW4() {
  std::vector<int64_t> Vs;
  for (int64_t V = -8; V <= 7; ++V)
    Vs.push_back(V);
  return Vs;
}

} // namespace

TEST(BitBlaster, ConstWordRoundTrip) {
  CnfFormula F;
  BitBlaster BB(F, 8);
  for (int64_t V : {0ll, 1ll, -1ll, 42ll, -128ll, 127ll}) {
    int64_t Out = 0;
    EXPECT_TRUE(BB.constValue(BB.constWord(V), Out));
    EXPECT_EQ(Out, V);
  }
  Word Fresh = BB.freshWord();
  int64_t Dummy;
  EXPECT_FALSE(BB.constValue(Fresh, Dummy));
}

TEST(BitBlaster, GateFoldingOnConstants) {
  CnfFormula F;
  BitBlaster BB(F, 4);
  Lit X = BB.freshBit();
  EXPECT_EQ(BB.mkAnd(BB.trueLit(), X), X);
  EXPECT_TRUE(BB.isConstFalse(BB.mkAnd(BB.falseLit(), X)));
  EXPECT_EQ(BB.mkOr(BB.falseLit(), X), X);
  EXPECT_TRUE(BB.isConstTrue(BB.mkOr(BB.trueLit(), X)));
  EXPECT_EQ(BB.mkXor(BB.falseLit(), X), X);
  EXPECT_EQ(BB.mkXor(BB.trueLit(), X), ~X);
  EXPECT_TRUE(BB.isConstFalse(BB.mkXor(X, X)));
  EXPECT_TRUE(BB.isConstTrue(BB.mkXor(X, ~X)));
  EXPECT_EQ(BB.mkMux(BB.trueLit(), X, ~X), X);
  EXPECT_EQ(BB.mkMux(BB.falseLit(), X, ~X), ~X);
  // Constant-only circuits emit no clauses beyond the true anchor.
  size_t Before = F.numClauses();
  (void)BB.add(BB.constWord(3), BB.constWord(4));
  EXPECT_EQ(F.numClauses(), Before);
}

TEST(BitBlaster, ConstantArithmeticFoldsExactly) {
  CnfFormula F;
  BitBlaster BB(F, 8);
  int64_t Out;
  ASSERT_TRUE(BB.constValue(BB.add(BB.constWord(100), BB.constWord(29)), Out));
  EXPECT_EQ(Out, wrapToWidth(129, 8));
  ASSERT_TRUE(BB.constValue(BB.mul(BB.constWord(7), BB.constWord(6)), Out));
  EXPECT_EQ(Out, 42);
  ASSERT_TRUE(BB.constValue(BB.neg(BB.constWord(-128)), Out));
  EXPECT_EQ(Out, -128); // wraps
}

// --- exhaustive width-4 sweeps ------------------------------------------------

struct BinOpCase {
  BinaryOp Op;
  const char *Name;
};

class BitBlastBinOpTest : public ::testing::TestWithParam<BinOpCase> {};

TEST_P(BitBlastBinOpTest, ExhaustiveWidth4) {
  BinaryOp Op = GetParam().Op;
  CircuitHarness H(4);
  BitBlaster &BB = H.blaster();

  bool IsCompare = isComparisonOp(Op);
  Word OutW;
  Lit OutB = NullLit;
  switch (Op) {
  case BinaryOp::Add:
    OutW = BB.add(H.a(), H.b());
    break;
  case BinaryOp::Sub:
    OutW = BB.sub(H.a(), H.b());
    break;
  case BinaryOp::Mul:
    OutW = BB.mul(H.a(), H.b());
    break;
  case BinaryOp::Div: {
    Word R;
    BB.divRem(H.a(), H.b(), OutW, R);
    break;
  }
  case BinaryOp::Rem: {
    Word Q;
    BB.divRem(H.a(), H.b(), Q, OutW);
    break;
  }
  case BinaryOp::Shl:
    OutW = BB.shl(H.a(), H.b());
    break;
  case BinaryOp::Shr:
    OutW = BB.ashr(H.a(), H.b());
    break;
  case BinaryOp::BitAnd:
    OutW = BB.bitAnd(H.a(), H.b());
    break;
  case BinaryOp::BitOr:
    OutW = BB.bitOr(H.a(), H.b());
    break;
  case BinaryOp::BitXor:
    OutW = BB.bitXor(H.a(), H.b());
    break;
  case BinaryOp::Lt:
    OutB = BB.slt(H.a(), H.b());
    break;
  case BinaryOp::Le:
    OutB = BB.sle(H.a(), H.b());
    break;
  case BinaryOp::Eq:
    OutB = BB.eq(H.a(), H.b());
    break;
  default:
    GTEST_SKIP();
  }

  for (int64_t A : allW4()) {
    for (int64_t B : allW4()) {
      bool Dz = false;
      int64_t Expected = evalBinaryOp(Op, A, B, 4, Dz);
      if (IsCompare) {
        EXPECT_EQ(H.evalBit(OutB, A, B), Expected != 0)
            << GetParam().Name << " a=" << A << " b=" << B;
      } else {
        EXPECT_EQ(H.evalWord(OutW, A, B), wrap4(Expected))
            << GetParam().Name << " a=" << A << " b=" << B;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, BitBlastBinOpTest,
    ::testing::Values(BinOpCase{BinaryOp::Add, "add"},
                      BinOpCase{BinaryOp::Sub, "sub"},
                      BinOpCase{BinaryOp::Mul, "mul"},
                      BinOpCase{BinaryOp::Div, "div"},
                      BinOpCase{BinaryOp::Rem, "rem"},
                      BinOpCase{BinaryOp::Shl, "shl"},
                      BinOpCase{BinaryOp::Shr, "ashr"},
                      BinOpCase{BinaryOp::BitAnd, "and"},
                      BinOpCase{BinaryOp::BitOr, "or"},
                      BinOpCase{BinaryOp::BitXor, "xor"},
                      BinOpCase{BinaryOp::Lt, "slt"},
                      BinOpCase{BinaryOp::Le, "sle"},
                      BinOpCase{BinaryOp::Eq, "eq"}),
    [](const auto &Info) { return Info.param.Name; });

TEST(BitBlaster, NegExhaustiveWidth4) {
  CircuitHarness H(4);
  Word Out = H.blaster().neg(H.a());
  for (int64_t A : allW4())
    EXPECT_EQ(H.evalWord(Out, A, 0), wrap4(-A)) << "a=" << A;
}

TEST(BitBlaster, NotExhaustiveWidth4) {
  CircuitHarness H(4);
  Word Out = H.blaster().bitNot(H.a());
  for (int64_t A : allW4())
    EXPECT_EQ(H.evalWord(Out, A, 0), wrap4(~A)) << "a=" << A;
}

TEST(BitBlaster, UltExhaustiveWidth4) {
  CircuitHarness H(4);
  Lit Out = H.blaster().ult(H.a(), H.b());
  for (int64_t A : allW4())
    for (int64_t B : allW4()) {
      uint64_t UA = static_cast<uint64_t>(A) & 0xF;
      uint64_t UB = static_cast<uint64_t>(B) & 0xF;
      EXPECT_EQ(H.evalBit(Out, A, B), UA < UB) << "a=" << A << " b=" << B;
    }
}

// --- random width-8 sweeps -----------------------------------------------------

TEST(BitBlaster, RandomWidth8Arithmetic) {
  CircuitHarness H(8);
  BitBlaster &BB = H.blaster();
  Word Sum = BB.add(H.a(), H.b());
  Word Prod = BB.mul(H.a(), H.b());
  Word Quot, Rem;
  BB.divRem(H.a(), H.b(), Quot, Rem);
  Word Shl = BB.shl(H.a(), H.b());
  Word Shr = BB.ashr(H.a(), H.b());

  Rng R(2024);
  for (int Round = 0; Round < 60; ++Round) {
    int64_t A = wrapToWidth(static_cast<int64_t>(R.next()), 8);
    int64_t B = wrapToWidth(static_cast<int64_t>(R.next()), 8);
    bool Dz = false;
    EXPECT_EQ(H.evalWord(Sum, A, B), evalBinaryOp(BinaryOp::Add, A, B, 8, Dz));
    EXPECT_EQ(H.evalWord(Prod, A, B),
              evalBinaryOp(BinaryOp::Mul, A, B, 8, Dz));
    EXPECT_EQ(H.evalWord(Quot, A, B),
              evalBinaryOp(BinaryOp::Div, A, B, 8, Dz));
    EXPECT_EQ(H.evalWord(Rem, A, B), evalBinaryOp(BinaryOp::Rem, A, B, 8, Dz));
    EXPECT_EQ(H.evalWord(Shl, A, B), evalBinaryOp(BinaryOp::Shl, A, B, 8, Dz));
    EXPECT_EQ(H.evalWord(Shr, A, B), evalBinaryOp(BinaryOp::Shr, A, B, 8, Dz));
  }
}

TEST(BitBlaster, DivByZeroGivesZero) {
  CircuitHarness H(8);
  Word Quot, Rem;
  H.blaster().divRem(H.a(), H.b(), Quot, Rem);
  for (int64_t A : {0ll, 5ll, -7ll, 127ll, -128ll}) {
    EXPECT_EQ(H.evalWord(Quot, A, 0), 0) << "a=" << A;
    EXPECT_EQ(H.evalWord(Rem, A, 0), 0) << "a=" << A;
  }
}

TEST(BitBlaster, IntMinDivMinusOne) {
  CircuitHarness H(8);
  Word Quot, Rem;
  H.blaster().divRem(H.a(), H.b(), Quot, Rem);
  EXPECT_EQ(H.evalWord(Quot, -128, -1), -128);
  EXPECT_EQ(H.evalWord(Rem, -128, -1), 0);
}

TEST(BitBlaster, GroupedCircuitDisablesWithSelector) {
  // A soft statement's circuit must vanish when its selector is off: with
  // the selector asserted, out == a+1 is forced; without it, out is free.
  CnfFormula F;
  BitBlaster BB(F, 4);
  Word A = BB.freshWord();
  Word Out = BB.freshWord();
  GroupId G = F.newGroup(7, "out := a + 1");
  BB.setGroup(G);
  Word Sum = BB.add(A, BB.constWord(1));
  BB.assertEqual(Out, Sum);
  BB.setGroup(NoGroup);

  Solver S;
  ASSERT_TRUE(S.addFormula(F));
  std::vector<Lit> Pin;
  for (int I = 0; I < 4; ++I)
    Pin.push_back(((3 >> I) & 1) ? A[I] : ~A[I]); // a = 3
  // Selector on: out must be 4; asking out==5 is UNSAT.
  std::vector<Lit> On = Pin;
  On.push_back(F.selectorLit(G));
  for (int I = 0; I < 4; ++I)
    On.push_back(((5 >> I) & 1) ? Out[I] : ~Out[I]);
  EXPECT_EQ(S.solve(On), LBool::False);
  // Selector off: out==5 becomes satisfiable (statement "replaced").
  std::vector<Lit> Off = Pin;
  Off.push_back(~F.selectorLit(G));
  for (int I = 0; I < 4; ++I)
    Off.push_back(((5 >> I) & 1) ? Out[I] : ~Out[I]);
  EXPECT_EQ(S.solve(Off), LBool::True);
}
