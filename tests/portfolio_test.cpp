//===- portfolio_test.cpp - Parallel portfolio MaxSAT tests ------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Covers the portfolio subsystem end to end: ClauseExchange delivery
// semantics, the diversification recipe, cooperative interruption of a
// long refutation, the shared-clause import differential (an importing
// solver refutes with fewer conflicts than an isolated twin), raced
// plain-SAT agreement with the single solver, and -- the headline -- TCAS
// localization parity: costs and diagnosis sets are byte-identical to the
// single-threaded session at 1, 2, and 4 workers.
//
// This suite is also the ThreadSanitizer target in CI: every racy path
// (exchange, interrupt flags, winner protocol) is exercised here.
//
//===----------------------------------------------------------------------===//

#include "maxsat/Portfolio.h"

#include "core/BugAssist.h"
#include "lang/Sema.h"
#include "programs/Tcas.h"
#include "programs/TcasMutants.h"
#include "support/FaultInject.h"
#include "support/Rng.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

using namespace bugassist;

namespace {

std::vector<Clause> pigeonholeClauses(int Holes) {
  int Pigeons = Holes + 1;
  auto VarOf = [Holes](int P, int H) { return P * Holes + H; };
  std::vector<Clause> Cs;
  for (int P = 0; P < Pigeons; ++P) {
    Clause C;
    for (int H = 0; H < Holes; ++H)
      C.push_back(mkLit(VarOf(P, H)));
    Cs.push_back(std::move(C));
  }
  for (int H = 0; H < Holes; ++H)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        Cs.push_back({~mkLit(VarOf(P1, H)), ~mkLit(VarOf(P2, H))});
  return Cs;
}

void loadClauses(Solver &S, const std::vector<Clause> &Cs, int NumVars) {
  S.ensureVars(NumVars);
  for (const Clause &C : Cs)
    ASSERT_TRUE(S.addClause(C));
}

std::vector<Clause> random3Sat(Rng &R, int Vars, int Clauses) {
  std::vector<Clause> Cs;
  for (int I = 0; I < Clauses; ++I) {
    Clause C;
    std::set<Var> Used;
    while (C.size() < 3) {
      Var V = static_cast<Var>(R.below(static_cast<uint64_t>(Vars)));
      if (!Used.insert(V).second)
        continue;
      C.push_back(mkLit(V, R.chance(1, 2)));
    }
    Cs.push_back(std::move(C));
  }
  return Cs;
}

/// The localization-shaped chain instance from bench_solvers: optimum 1,
/// many distinct CoMSSes, so enumeration order is really exercised.
MaxSatInstance selectorChain(int Length) {
  MaxSatInstance Inst;
  Inst.NumVars = (Length + 1) + Length;
  auto Y = [](int I) { return mkLit(I); };
  auto Sel = [Length](int I) { return mkLit(Length + I); };
  Inst.Hard.push_back({Y(0)});
  Inst.Hard.push_back({~Y(Length)});
  for (int I = 1; I <= Length; ++I) {
    Inst.Hard.push_back({~Sel(I), ~Y(I - 1), Y(I)});
    Inst.Hard.push_back({~Sel(I), Y(I - 1), ~Y(I)});
    Inst.Soft.push_back({{Sel(I)}, 1});
  }
  return Inst;
}

} // namespace

// --- ClauseExchange ---------------------------------------------------------

TEST(ClauseExchange, DeliversToEveryoneButTheSource) {
  ClauseExchange Ex(3);
  Ex.publish(0, {mkLit(1), mkLit(2)}, 2);
  Ex.publish(1, {mkLit(3)}, 1);

  std::vector<Lit> C;
  uint32_t Lbd = 0;
  // Worker 0 sees only worker 1's clause.
  ASSERT_TRUE(Ex.fetch(0, C, Lbd));
  EXPECT_EQ(C, std::vector<Lit>{mkLit(3)});
  EXPECT_EQ(Lbd, 1u);
  EXPECT_FALSE(Ex.fetch(0, C, Lbd));
  // Worker 2 sees both, in publication order.
  ASSERT_TRUE(Ex.fetch(2, C, Lbd));
  EXPECT_EQ(C, (std::vector<Lit>{mkLit(1), mkLit(2)}));
  ASSERT_TRUE(Ex.fetch(2, C, Lbd));
  EXPECT_EQ(C, std::vector<Lit>{mkLit(3)});
  EXPECT_FALSE(Ex.fetch(2, C, Lbd));
  // Worker 1 sees only worker 0's clause; each entry is delivered once.
  ASSERT_TRUE(Ex.fetch(1, C, Lbd));
  EXPECT_EQ(C, (std::vector<Lit>{mkLit(1), mkLit(2)}));
  EXPECT_FALSE(Ex.fetch(1, C, Lbd));
  EXPECT_EQ(Ex.published(), 2u);
  EXPECT_EQ(Ex.dropped(), 0u);
}

TEST(ClauseExchange, BoundedBufferDropsOldest) {
  ClauseExchange Ex(2, /*Capacity=*/4);
  for (int I = 0; I < 10; ++I)
    Ex.publish(0, {mkLit(I)}, 1);
  EXPECT_EQ(Ex.published(), 10u);
  EXPECT_EQ(Ex.dropped(), 6u);
  // A late reader only sees the surviving tail (clauses 6..9).
  std::vector<Lit> C;
  uint32_t Lbd = 0;
  std::vector<Lit> Seen;
  while (Ex.fetch(1, C, Lbd))
    Seen.push_back(C[0]);
  EXPECT_EQ(Seen, (std::vector<Lit>{mkLit(6), mkLit(7), mkLit(8), mkLit(9)}));
}

// --- diversification --------------------------------------------------------

TEST(Portfolio, DiversificationRecipeIsDeterministicAnchoredAtBase) {
  Solver::Options Base;
  // Worker 0 is bit-for-bit the base configuration.
  Solver::Options W0 = diversifiedOptions(Base, 0);
  EXPECT_EQ(W0.RandSeed, Base.RandSeed);
  EXPECT_EQ(W0.Restart, Base.Restart);
  EXPECT_EQ(W0.Retention, Base.Retention);
  EXPECT_EQ(W0.InitPhase, Base.InitPhase);
  EXPECT_EQ(W0.RandomBranchFreq, Base.RandomBranchFreq);

  // Workers 1..7 all differ from the anchor in seed, and the recipe is a
  // pure function of (base, id).
  for (size_t Id = 1; Id < 8; ++Id) {
    Solver::Options A = diversifiedOptions(Base, Id);
    Solver::Options B = diversifiedOptions(Base, Id);
    EXPECT_NE(A.RandSeed, Base.RandSeed) << "worker " << Id;
    EXPECT_EQ(A.RandSeed, B.RandSeed) << "worker " << Id;
    EXPECT_EQ(static_cast<int>(A.Restart), static_cast<int>(B.Restart));
    EXPECT_EQ(static_cast<int>(A.InitPhase), static_cast<int>(B.InitPhase));
  }
  // The recipe actually varies policies across the cycle.
  EXPECT_EQ(diversifiedOptions(Base, 7).Retention,
            Solver::Options::RetentionPolicy::ActivityHalving);
  EXPECT_EQ(diversifiedOptions(Base, 2).Restart,
            Solver::Options::RestartPolicy::Luby);
}

// --- cooperative interruption ----------------------------------------------

TEST(Portfolio, InterruptStopsALongRefutationPromptly) {
  // PHP(10, 9) takes far longer than this test is allowed to: without the
  // interrupt the solve would effectively hang.
  Solver S;
  loadClauses(S, pigeonholeClauses(9), 10 * 9);

  Timer Total;
  LBool Result = LBool::True;
  std::thread Runner([&] { Result = S.solve(); });
  // Give the search a moment to get going, then cancel it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  S.interrupt();
  Runner.join();

  EXPECT_EQ(Result, LBool::Undef);
  EXPECT_TRUE(S.interrupted());
  // "Promptly": seconds, not the hours the full refutation would need.
  EXPECT_LT(Total.seconds(), 10.0);

  // A sticky flag also stops a solve that starts after the interrupt.
  EXPECT_EQ(S.solve(), LBool::Undef);

  // clearInterrupt re-arms the solver for real work.
  S.clearInterrupt();
  Solver Small;
  loadClauses(Small, pigeonholeClauses(4), 5 * 4);
  EXPECT_EQ(Small.solve(), LBool::False);
}

// --- shared-clause import differential --------------------------------------

TEST(Portfolio, ImportedGlueShortensTheProof) {
  // Worker A refutes PHP(8, 7) and publishes its low-LBD lemmas; worker B
  // imports them before solving the same instance and must finish with
  // fewer conflicts than an isolated twin C (identical configuration,
  // no imports).
  const int Holes = 7;
  const int NumVars = (Holes + 1) * Holes;
  auto Cs = pigeonholeClauses(Holes);

  ClauseExchange Ex(2);
  Solver::Options ExportOpts;
  ExportOpts.ShareLbdMax = 6; // pigeonhole glue is mid-LBD; widen the tap
  Solver A{ExportOpts};
  loadClauses(A, Cs, NumVars);
  A.setShareHooks(
      [&Ex](const std::vector<Lit> &L, uint32_t Lbd) { Ex.publish(0, L, Lbd); },
      [&Ex](std::vector<Lit> &L, uint32_t &Lbd) { return Ex.fetch(0, L, Lbd); },
      NumVars);
  ASSERT_EQ(A.solve(), LBool::False);
  ASSERT_GT(A.stats().ClausesExported, 0u);

  Solver B;
  loadClauses(B, Cs, NumVars);
  B.setShareHooks(
      [&Ex](const std::vector<Lit> &L, uint32_t Lbd) { Ex.publish(1, L, Lbd); },
      [&Ex](std::vector<Lit> &L, uint32_t &Lbd) { return Ex.fetch(1, L, Lbd); },
      NumVars);
  ASSERT_EQ(B.solve(), LBool::False);
  EXPECT_GT(B.stats().ClausesImported, 0u);

  Solver C2; // isolated twin of B
  loadClauses(C2, Cs, NumVars);
  ASSERT_EQ(C2.solve(), LBool::False);

  EXPECT_LT(B.stats().Conflicts, C2.stats().Conflicts)
      << "imported glue clauses did not shorten the refutation";
}

// --- raced plain SAT --------------------------------------------------------

TEST(Portfolio, RacedSatAgreesWithSingleSolverOnRandomSweep) {
  Rng R(7777);
  for (int Round = 0; Round < 12; ++Round) {
    int Vars = 40;
    auto Cs = random3Sat(R, Vars, static_cast<int>(Vars * 4.26));
    SatRaceResult Single = racePortfolioSat(Cs, Vars, 1);
    SatRaceResult Raced = racePortfolioSat(Cs, Vars, 3);
    ASSERT_NE(Single.Result, LBool::Undef);
    ASSERT_NE(Raced.Result, LBool::Undef);
    EXPECT_EQ(Raced.Result, Single.Result) << "round " << Round;
    EXPECT_GE(Raced.Winner, 0);
    EXPECT_EQ(Raced.PerWorker.size(), 3u);
  }
}

TEST(Portfolio, RacedRefutationIsUnsat) {
  auto Cs = pigeonholeClauses(6);
  SatRaceResult Race = racePortfolioSat(Cs, 7 * 6, 4);
  EXPECT_EQ(Race.Result, LBool::False);
  ASSERT_GE(Race.Winner, 0);
  EXPECT_LT(Race.Winner, 4);
}

// --- portfolio MaxSAT sessions ----------------------------------------------

TEST(Portfolio, EnumerationMatchesSingleThreadedSessionOnChains) {
  // Drive the full Algorithm 1 loop (solve, block, re-solve ... to
  // exhaustion) at several thread counts; every step must report the same
  // cost and falsified set as the single-threaded canonical session.
  for (bool Weighted : {false, true}) {
    MaxSatInstance Inst = selectorChain(8);
    auto Reference = makeMaxSatSession(Inst, Weighted, 0, Solver::Options(),
                                       /*Canonical=*/true);
    std::vector<MaxSatResult> Want;
    for (;;) {
      MaxSatResult R = Reference->solve();
      Want.push_back(R);
      if (R.Status != MaxSatStatus::Optimum || R.FalsifiedSoft.empty())
        break;
      Clause Beta;
      for (size_t I : R.FalsifiedSoft)
        Beta.push_back(Inst.Soft[I].Lits[0]);
      if (!Reference->addHardClause(Beta))
        break;
    }
    ASSERT_GT(Want.size(), 2u);

    for (size_t Threads : {1u, 2u, 4u}) {
      auto Portfolio = makePortfolioSession(Inst, Weighted, Threads);
      for (size_t Step = 0; Step < Want.size(); ++Step) {
        MaxSatResult R = Portfolio->solve();
        ASSERT_EQ(R.Status, Want[Step].Status)
            << "threads " << Threads << " step " << Step;
        if (R.Status != MaxSatStatus::Optimum)
          break;
        EXPECT_EQ(R.Cost, Want[Step].Cost)
            << "threads " << Threads << " step " << Step;
        EXPECT_EQ(R.FalsifiedSoft, Want[Step].FalsifiedSoft)
            << "threads " << Threads << " step " << Step;
        if (R.FalsifiedSoft.empty())
          break;
        Clause Beta;
        for (size_t I : R.FalsifiedSoft)
          Beta.push_back(Inst.Soft[I].Lits[0]);
        if (!Portfolio->addHardClause(Beta))
          break;
      }
      // Every decided race has a recorded winner.
      const PortfolioStats &PS = Portfolio->portfolioStats();
      uint64_t Wins = 0;
      for (uint64_t W : PS.WinsByWorker)
        Wins += W;
      EXPECT_GT(Wins, 0u);
    }
  }
}

// --- TCAS localization parity (the acceptance workload) ---------------------

TEST(Portfolio, TcasLocalizationIdenticalAtEveryThreadCount) {
  DiagEngine Diags;
  auto Golden = parseAndAnalyze(tcasSource(), Diags);
  ASSERT_TRUE(Golden != nullptr) << Diags.render();
  Interpreter GI(*Golden, tcasExecOptions());
  auto Pool = tcasTestPool(300);
  std::vector<int64_t> GoldenOut;
  GoldenOut.reserve(Pool.size());
  for (const InputVector &In : Pool)
    GoldenOut.push_back(GI.run("main", In).ReturnValue);

  size_t MutantsChecked = 0;
  for (const TcasMutant &M : tcasMutants()) {
    if (MutantsChecked >= 2)
      break;
    DiagEngine D2;
    auto Faulty = parseAndAnalyze(M.Source, D2);
    if (!Faulty)
      continue;
    Interpreter FI(*Faulty, tcasExecOptions());
    size_t FailingIdx = Pool.size();
    for (size_t I = 0; I < Pool.size(); ++I)
      if (FI.run("main", Pool[I]).ReturnValue != GoldenOut[I]) {
        FailingIdx = I;
        break;
      }
    if (FailingIdx == Pool.size())
      continue;
    ++MutantsChecked;

    BugAssistDriver Driver(*Faulty, "main", tcasUnrollOptions());
    Spec S;
    S.CheckObligations = false;
    S.GoldenReturn = GoldenOut[FailingIdx];

    LocalizeOptions LO;
    LO.MaxDiagnoses = 8;
    LocalizationReport Single = Driver.localize(Pool[FailingIdx], S, LO);
    ASSERT_FALSE(Single.Diagnoses.empty()) << "v" << M.Version;

    for (size_t Threads : {1u, 2u, 4u}) {
      LocalizeOptions PLO = LO;
      PLO.Threads = Threads;
      LocalizationReport Ported = Driver.localize(Pool[FailingIdx], S, PLO);
      EXPECT_EQ(Ported.Exhausted, Single.Exhausted)
          << "v" << M.Version << " threads " << Threads;
      EXPECT_EQ(Ported.AllLines, Single.AllLines)
          << "v" << M.Version << " threads " << Threads;
      ASSERT_EQ(Ported.Diagnoses.size(), Single.Diagnoses.size())
          << "v" << M.Version << " threads " << Threads;
      for (size_t D = 0; D < Single.Diagnoses.size(); ++D) {
        EXPECT_EQ(Ported.Diagnoses[D].Lines, Single.Diagnoses[D].Lines)
            << "v" << M.Version << " threads " << Threads << " diag " << D;
        EXPECT_EQ(Ported.Diagnoses[D].Unwindings,
                  Single.Diagnoses[D].Unwindings)
            << "v" << M.Version << " threads " << Threads << " diag " << D;
        EXPECT_EQ(Ported.Diagnoses[D].Cost, Single.Diagnoses[D].Cost)
            << "v" << M.Version << " threads " << Threads << " diag " << D;
      }
      if (Threads > 1) {
        EXPECT_EQ(Ported.PortfolioWins.size(), Threads);
      }
    }
  }
  EXPECT_EQ(MutantsChecked, 2u) << "TCAS suite lost its failing mutants";
}

// --- fault isolation ---------------------------------------------------------

namespace {

/// PHP(Holes + 1, Holes) with EVERY clause soft (weight 1): optimum 1, but
/// the first Fu-Malik core requires the full exponential refutation, so
/// every worker is guaranteed to allocate learnt clauses while solving.
MaxSatInstance softPigeonhole(int Holes) {
  MaxSatInstance Inst;
  Inst.NumVars = (Holes + 1) * Holes;
  for (Clause &C : pigeonholeClauses(Holes))
    Inst.Soft.push_back({std::move(C), 1});
  return Inst;
}

} // namespace

TEST(PortfolioFaults, WorkerBadAllocIsIsolatedAndDiagnosisUnchanged) {
  // Reference: the canonical single-threaded session.
  MaxSatInstance Inst = softPigeonhole(5);
  auto Ref = makeMaxSatSession(Inst, /*Weighted=*/false, /*ConflictBudget=*/0,
                               Solver::Options(), /*Canonical=*/true);
  MaxSatResult Want = Ref->solve();
  ASSERT_EQ(Want.Status, MaxSatStatus::Optimum);
  ASSERT_EQ(Want.Cost, 1u);

  // Portfolio of four; one worker dies of bad_alloc at its first learnt
  // allocation. The race must finish on the survivors with the same
  // canonical diagnosis.
  auto Portfolio = makePortfolioSession(Inst, /*Weighted=*/false, 4);
  MaxSatResult Got;
  {
    faultinject::ScopedFault Fault(faultinject::Event::Allocation,
                                   faultinject::Fault::BadAlloc, /*Nth=*/1);
    Got = Portfolio->solve();
  }

  ASSERT_EQ(Got.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(Got.Cost, Want.Cost);
  EXPECT_EQ(Got.FalsifiedSoft, Want.FalsifiedSoft);
  EXPECT_EQ(Portfolio->portfolioStats().WorkerFaults, 1u);
  EXPECT_EQ(Portfolio->aliveWorkers(), 3u); // the casualty sits this round out

  // Enumeration continues in lockstep with the reference -- and the next
  // solve() respawns the casualty first, so the pool self-heals back to
  // full width instead of shrinking for the session's lifetime.
  Clause Beta;
  for (size_t I : Got.FalsifiedSoft)
    Beta.push_back(Inst.Soft[I].Lits[0]);
  ASSERT_TRUE(Portfolio->addHardClause(Beta));
  ASSERT_TRUE(Ref->addHardClause(Beta));
  MaxSatResult Want2 = Ref->solve();
  MaxSatResult Got2 = Portfolio->solve();
  ASSERT_EQ(Got2.Status, Want2.Status);
  if (Want2.Status == MaxSatStatus::Optimum) {
    EXPECT_EQ(Got2.Cost, Want2.Cost);
    EXPECT_EQ(Got2.FalsifiedSoft, Want2.FalsifiedSoft);
  }
  EXPECT_EQ(Portfolio->portfolioStats().WorkerRespawns, 1u);
  EXPECT_EQ(Portfolio->aliveWorkers(), 4u); // back to full strength
}

TEST(PortfolioFaults, RacedSatSurvivesWorkerCrash) {
  // The PHP(7, 6) refutation restarts many times, so the armed fault is
  // guaranteed to kill exactly one racer mid-proof; the answer must still
  // be UNSAT. (Restart events, unlike allocations, only ever happen on
  // worker threads -- racePortfolioSat builds its solvers on the caller's
  // thread, which must NOT be the one to die.)
  auto Cs = pigeonholeClauses(6);
  // Variable elimination shrinks this refutation enough that a worker can
  // finish before anyone restarts (scheduling-dependent); keep the pass
  // off so the armed restart event reliably fires. Fault isolation is this
  // test's subject, preprocessing is simplify_test's.
  Solver::Options NoPre;
  NoPre.Preprocess = false;
  faultinject::ScopedFault Fault(faultinject::Event::Restart,
                                 faultinject::Fault::BadAlloc, /*Nth=*/1);
  SatRaceResult Race = racePortfolioSat(Cs, 7 * 6, 4, NoPre);
  EXPECT_EQ(Race.Result, LBool::False);
  EXPECT_EQ(Race.Faults, 1u);
  ASSERT_GE(Race.Winner, 0);
}

// --- budgets across thread widths (ISSUE acceptance) -------------------------

TEST(PortfolioBudget, SoftPigeonholeDeadlineIsAnytimeAtEveryWidth) {
  // soft-PHP(10, 9): the first core needs a PHP(10, 9) refutation -- far
  // beyond any test budget -- but the hard part is empty, so the harvest
  // model is instant. A 50 ms deadline must yield Unknown with a finite
  // upper bound and a witness, well under a second, at every width.
  MaxSatInstance Inst = softPigeonhole(9);
  for (size_t Threads : {1u, 2u, 4u}) {
    std::unique_ptr<MaxSatSession> Session;
    if (Threads == 1)
      Session = makeMaxSatSession(Inst, /*Weighted=*/false,
                                  /*ConflictBudget=*/0, Solver::Options(),
                                  /*Canonical=*/true);
    else
      Session = makePortfolioSession(Inst, /*Weighted=*/false, Threads);
    Solver::Budget B;
    B.setDeadlineIn(0.05);
    Session->setBudget(B);
    Timer T;
    MaxSatResult R = Session->solve();
    double Elapsed = T.seconds();
    ASSERT_EQ(R.Status, MaxSatStatus::Unknown) << "threads " << Threads;
    EXPECT_NE(R.UpperBound, UINT64_MAX) << "threads " << Threads;
    ASSERT_FALSE(R.BestModel.empty()) << "threads " << Threads;
    EXPECT_GE(R.UpperBound, 1u) << "threads " << Threads; // optimum is 1
    EXPECT_LT(Elapsed, 1.0) << "threads " << Threads
                            << ": deadline not honored promptly";
  }
}
