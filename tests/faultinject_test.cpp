//===- faultinject_test.cpp - campaign engine unit tests ------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Pins the fault-injection campaign engine (support/FaultInject.h) to its
// contract: scripted schedules fire at exactly the occurrence they name
// (once, or periodically), even under thread contention; probabilistic
// schedules are seeded and calibrated; the spec grammar round-trips and
// rejects garbage without leaving anything armed; and ScopedFault cannot
// leak an armed schedule past its scope. The serve soak harness builds on
// every one of these properties.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInject.h"

#include <gtest/gtest.h>

#include <atomic>
#include <new>
#include <thread>
#include <vector>

using namespace bugassist;
namespace fi = bugassist::faultinject;

namespace {

/// Drives \p N occurrences of \p E and returns at which (1-based) ones the
/// engine fired. Interrupt faults only -- BadAlloc would throw.
std::vector<uint64_t> drive(fi::Event E, uint64_t N) {
  std::vector<uint64_t> Fired;
  for (uint64_t I = 1; I <= N; ++I)
    if (fi::onEvent(E))
      Fired.push_back(I);
  return Fired;
}

} // namespace

TEST(FaultInject, DisarmedIsInertAndFree) {
  fi::disarm();
  EXPECT_FALSE(fi::active());
  for (int I = 0; I < 100; ++I)
    EXPECT_FALSE(fi::onEvent(fi::Event::QueuePop));
}

TEST(FaultInject, ScriptedOneShotFiresAtExactlyTheNthOccurrence) {
  fi::ScopedFault Fault(fi::Event::QueuePop, fi::Fault::Interrupt, /*Nth=*/7);
  EXPECT_TRUE(fi::active());
  EXPECT_EQ(drive(fi::Event::QueuePop, 50), (std::vector<uint64_t>{7}));
  EXPECT_EQ(fi::firedCount(fi::Event::QueuePop), 1u);
  // Other events' sites are unaffected by this schedule.
  EXPECT_EQ(fi::firedCount(fi::Event::Restart), 0u);
}

TEST(FaultInject, PeriodicScheduleRefiresEveryPeriod) {
  fi::ScopedFault Fault(fi::Event::EmitterFlush, fi::Fault::Interrupt,
                        /*Nth=*/2, /*Period=*/3);
  EXPECT_EQ(drive(fi::Event::EmitterFlush, 12),
            (std::vector<uint64_t>{2, 5, 8, 11}));
  EXPECT_EQ(fi::firedCount(fi::Event::EmitterFlush), 4u);
}

TEST(FaultInject, BadAllocFaultThrowsFromTheEventSite) {
  fi::ScopedFault Fault(fi::Event::CacheFill, fi::Fault::BadAlloc, /*Nth=*/1);
  EXPECT_THROW(fi::onEvent(fi::Event::CacheFill), std::bad_alloc);
  // The one-shot is spent: the next occurrence passes clean.
  EXPECT_FALSE(fi::onEvent(fi::Event::CacheFill));
}

TEST(FaultInject, OneShotIsClaimedByExactlyOneThread) {
  // Eight threads hammer the same event; the single firing occurrence
  // must be observed by exactly one of them (occurrences are claimed by
  // fetch_add, so two threads can never both see the Nth).
  fi::ScopedFault Fault(fi::Event::SimplifyStep, fi::Fault::Interrupt,
                        /*Nth=*/1000);
  std::atomic<uint64_t> Fired{0};
  std::vector<std::thread> Pool;
  for (int T = 0; T < 8; ++T)
    Pool.emplace_back([&Fired] {
      for (int I = 0; I < 500; ++I)
        if (fi::onEvent(fi::Event::SimplifyStep))
          ++Fired;
    });
  for (std::thread &Th : Pool)
    Th.join();
  EXPECT_EQ(Fired.load(), 1u);
  EXPECT_EQ(fi::firedCount(fi::Event::SimplifyStep), 1u);
}

TEST(FaultInject, ProbabilisticRateIsSeededAndCalibrated) {
  std::string Error;
  ASSERT_TRUE(fi::armSpec("jsonparse:interrupt%0.25;seed=12345", Error))
      << Error;
  std::vector<uint64_t> First = drive(fi::Event::JsonParse, 10000);
  // Marginal rate: ~2500 fires, asserted with a generous +-40% band (the
  // xorshift stream is deterministic, so this cannot flake -- the band
  // just keeps the test honest about what it pins).
  EXPECT_GT(First.size(), 1500u);
  EXPECT_LT(First.size(), 3500u);
  // Same spec + same seed on a single thread: the identical fire pattern.
  ASSERT_TRUE(fi::armSpec("jsonparse:interrupt%0.25;seed=12345", Error));
  EXPECT_EQ(drive(fi::Event::JsonParse, 10000), First);
  fi::disarm();
}

TEST(FaultInject, SpecGrammarAcceptsTheDocumentedForms) {
  std::string Error;
  EXPECT_TRUE(fi::armSpec("alloc:badalloc@1", Error)) << Error;
  EXPECT_TRUE(fi::armSpec("restart:interrupt@3/5", Error)) << Error;
  EXPECT_TRUE(fi::armSpec("queuepop:badalloc%0.5", Error)) << Error;
  EXPECT_TRUE(fi::armSpec(
      "queuepop:badalloc@3/5;emitterflush:interrupt%0.001;seed=42", Error))
      << Error;
  fi::disarm();
}

TEST(FaultInject, SpecParserRejectsGarbageAndDisarms) {
  std::string Error;
  const char *Bad[] = {
      "bogus:badalloc@1",  // unknown event
      "alloc:nope@1",      // unknown fault
      "alloc:badalloc",    // missing schedule
      "alloc:badalloc@0x", // trailing junk on N
      "alloc:badalloc@1/", // empty period
      "alloc:badalloc%0",  // rate outside (0, 1]
      "alloc:badalloc%1.5",
      "seed=notanumber",
  };
  for (const char *Spec : Bad) {
    Error.clear();
    EXPECT_FALSE(fi::armSpec(Spec, Error)) << Spec;
    EXPECT_FALSE(Error.empty()) << Spec;
    EXPECT_FALSE(fi::active()) << Spec; // a bad spec leaves nothing armed
  }
}

TEST(FaultInject, ScopedFaultDisarmsOnScopeExit) {
  {
    fi::ScopedFault Fault(fi::Event::QueuePop, fi::Fault::Interrupt, 1000);
    EXPECT_TRUE(fi::active());
  }
  EXPECT_FALSE(fi::active());
  // The spec-string form resets the fired counters on entry.
  {
    fi::ScopedFault Fault("queuepop:interrupt@1");
    EXPECT_EQ(fi::firedTotal(), 0u);
    EXPECT_TRUE(fi::onEvent(fi::Event::QueuePop));
    EXPECT_EQ(fi::firedTotal(), 1u);
  }
  EXPECT_FALSE(fi::active());
}
