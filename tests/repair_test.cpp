//===- repair_test.cpp - Algorithm 2 repair tests --------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Repair.h"

#include "core/Pipeline.h"
#include "interp/Interpreter.h"
#include "lang/Sema.h"
#include "programs/Tcas.h"
#include "programs/TcasMutants.h"

#include <gtest/gtest.h>

using namespace bugassist;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagEngine Diags;
  auto P = parseAndAnalyze(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.render();
  return P;
}

} // namespace

TEST(Repair, OffByOneOnMotivatingExample) {
  // Paper Section 2: the fix for Program 1 is changing the constant 2 on
  // the else branch; kappa - 1 = 1 passes all inputs.
  const char *Src = "int Array[3];\n"
                    "int main(int index) {\n"
                    "  if (index != 1)\n"
                    "    index = 2;\n"
                    "  else\n"
                    "    index = index + 2;\n"
                    "  int i = index;\n"
                    "  assert(i >= 0 && i < 3);\n"
                    "  return Array[i];\n"
                    "}\n";
  auto P = compile(Src);
  RepairResult R =
      repairProgram(*P, "main", {{InputValue::scalar(1)}}, Spec{});
  ASSERT_TRUE(R.Found) << "tried " << R.CandidatesTried << " candidates";
  // Valid fixes exist on the branch condition (line 3) and the else-branch
  // constant (line 6, the paper's suggested kappa-1 fix); either passes
  // verification.
  EXPECT_TRUE(R.Suggestion.Line == 3u || R.Suggestion.Line == 6u)
      << "line " << R.Suggestion.Line << ": " << R.Suggestion.Description;

  // Whatever was chosen, the fixed program must pass every input.
  Interpreter I(*R.Suggestion.FixedProgram, ExecOptions{16});
  for (int64_t X = -4; X <= 4; ++X)
    EXPECT_EQ(I.run("main", {InputValue::scalar(X)}).Status, ExecStatus::Ok)
        << "x=" << X;
}

TEST(Repair, OperatorSwapBoundaryCheck) {
  // Classic boundary bug: <= should be <.
  const char *Src = "int main(int x) {\n"
                    "  assume(x >= 0 && x <= 20);\n"
                    "  bool ok = x <= 10;\n"
                    "  int y = ok ? x : 0;\n"
                    "  assert(y < 10);\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  RepairResult R =
      repairProgram(*P, "main", {{InputValue::scalar(10)}}, Spec{});
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Suggestion.Line, 3u);
  EXPECT_NE(R.Suggestion.Description.find("'<='"), std::string::npos)
      << R.Suggestion.Description;
}

TEST(Repair, StrncatStyleOffByOne) {
  // Section 6.3 shape: the last argument to a trusted copy routine is one
  // too large; the library writes a terminator one past the copied length.
  const char *Src =
      "int SIZE_BUG;\n"
      "void copyN(int dest[8], int src[8], int n) {\n"
      "  int k = 0;\n"
      "  while (k < n) { dest[k] = src[k]; k = k + 1; }\n"
      "  dest[n] = 0;\n"
      "}\n"
      "int main(int s0) {\n"
      "  int buf[8];\n"
      "  int data[8];\n"
      "  data[0] = s0;\n"
      "  copyN(buf, data, 8);\n"
      "  return buf[0];\n"
      "}\n";
  auto P = compile(Src);
  RepairOptions Opts;
  Opts.Unroll.MaxLoopUnwind = 10;
  Opts.Unroll.TrustedFunctions.insert("copyN");
  RepairResult R = repairProgram(*P, "main", {{InputValue::scalar(1)}},
                                 Spec{}, nullptr, Opts);
  ASSERT_TRUE(R.Found) << "suspects:" << R.SuspectLines.size();
  // The fix is at the call site (line 11): 8 -> 7; the library itself is
  // trusted and untouched.
  EXPECT_EQ(R.Suggestion.Line, 11u);
  EXPECT_NE(R.Suggestion.Description.find("8 -> 7"), std::string::npos)
      << R.Suggestion.Description;
}

TEST(Repair, GoldenOutputDrivenRepair) {
  // max() with inverted comparison; goldens come from the true max.
  const char *Src = "int main(int a, int b) {\n"
                    "  if (a < b) return a;\n"
                    "  return b;\n"
                    "}\n";
  auto P = compile(Src);
  std::vector<InputVector> Fails = {
      {InputValue::scalar(1), InputValue::scalar(5)},
      {InputValue::scalar(7), InputValue::scalar(2)},
  };
  std::vector<int64_t> Goldens = {5, 7};
  Spec S;
  S.CheckObligations = false;
  RepairResult R = repairProgram(*P, "main", Fails, S, &Goldens);
  ASSERT_TRUE(R.Found);
  // '<' -> '>' (or an equivalent swap) on line 2 fixes both tests.
  EXPECT_EQ(R.Suggestion.Line, 2u);
  Interpreter I(*R.Suggestion.FixedProgram, ExecOptions{16});
  EXPECT_EQ(I.run("main", Fails[0]).ReturnValue, 5);
  EXPECT_EQ(I.run("main", Fails[1]).ReturnValue, 7);
}

TEST(Repair, ReportsFailureWhenNoNearMissFixExists) {
  // The bug is a completely wrong algorithm; no single off-by-one or
  // operator swap can satisfy the spec for all inputs.
  const char *Src = "int main(int x) {\n"
                    "  assume(x >= 0 && x <= 7);\n"
                    "  int y = 0;\n"
                    "  assert(y == x * x);\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  RepairResult R =
      repairProgram(*P, "main", {{InputValue::scalar(2)}}, Spec{});
  EXPECT_FALSE(R.Found);
  EXPECT_FALSE(R.SuspectLines.empty()) << "localization should still work";
}

TEST(Repair, RespectsCandidateLineRestriction) {
  const char *Src = "int main(int x) {\n"
                    "  int a = 3;\n"
                    "  int b = 3;\n"
                    "  assert(a + b == 5);\n"
                    "  return a + b;\n"
                    "}\n";
  auto P = compile(Src);
  RepairOptions Opts;
  Opts.CandidateLines = {3}; // only allow touching line 3
  RepairResult R = repairProgram(*P, "main", {{InputValue::scalar(0)}},
                                 Spec{}, nullptr, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Suggestion.Line, 3u);
  EXPECT_NE(R.Suggestion.Description.find("3 -> 2"), std::string::npos);
}

TEST(Repair, MaxCandidatesBudget) {
  const char *Src = "int main(int x) {\n"
                    "  int y = x + 1;\n"
                    "  assert(y == x + 2);\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  RepairOptions Opts;
  Opts.MaxCandidates = 0;
  RepairResult R = repairProgram(*P, "main", {{InputValue::scalar(0)}},
                                 Spec{}, nullptr, Opts);
  EXPECT_FALSE(R.Found);
  EXPECT_EQ(R.CandidatesTried, 0u);
  EXPECT_TRUE(R.Truncated) << "budget-cut must be flagged, not a decided no";
}

// --- pooled path --------------------------------------------------------------

TEST(RepairPooled, MatchesRebuildOverload) {
  // Same program, same failing tests: the pooled overload must land on
  // the same suggestion as the rebuild-everything reference path.
  const char *Src = "int main(int a, int b) {\n"
                    "  if (a < b) return a;\n"
                    "  return b;\n"
                    "}\n";
  auto P = compile(Src);
  std::vector<InputVector> Fails = {
      {InputValue::scalar(1), InputValue::scalar(5)},
      {InputValue::scalar(7), InputValue::scalar(2)},
  };
  std::vector<int64_t> Goldens = {5, 7};
  Spec S;
  S.CheckObligations = false;

  RepairResult Ref = repairProgram(*P, "main", Fails, S, &Goldens);
  BugAssistDriver Driver(*P, "main");
  RepairResult Pooled =
      repairProgram(*P, Driver, "main", Fails, S, &Goldens);
  ASSERT_TRUE(Ref.Found);
  ASSERT_TRUE(Pooled.Found);
  EXPECT_EQ(Pooled.Suggestion.Line, Ref.Suggestion.Line);
  EXPECT_EQ(Pooled.Suggestion.Description, Ref.Suggestion.Description);
  // The pooled path never unrolls+encodes for localization, and with a
  // goldens-only spec the BMC verification is skipped too: zero formula
  // builds, versus one for the rebuild path's localization.
  EXPECT_EQ(Pooled.Stats.FormulaBuilds, 0u);
  EXPECT_EQ(Ref.Stats.FormulaBuilds, 1u);
  EXPECT_GT(Pooled.Stats.PrescreenSatCalls, 0u);
}

TEST(RepairPooled, PrescreenIsHarmlessWhenDisabled) {
  const char *Src = "int main(int x) {\n"
                    "  assume(x >= 0 && x <= 20);\n"
                    "  bool ok = x <= 10;\n"
                    "  int y = ok ? x : 0;\n"
                    "  assert(y < 10);\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  BugAssistDriver Driver(*P, "main");
  std::vector<InputVector> Fails = {{InputValue::scalar(10)}};

  RepairOptions On;
  RepairResult WithScreen =
      repairProgram(*P, Driver, "main", Fails, Spec{}, nullptr, On);
  RepairOptions Off;
  Off.PrescreenLines = false;
  RepairResult WithoutScreen =
      repairProgram(*P, Driver, "main", Fails, Spec{}, nullptr, Off);

  ASSERT_TRUE(WithScreen.Found);
  ASSERT_TRUE(WithoutScreen.Found);
  EXPECT_EQ(WithScreen.Suggestion.Line, WithoutScreen.Suggestion.Line);
  EXPECT_EQ(WithScreen.Suggestion.Description,
            WithoutScreen.Suggestion.Description);
  EXPECT_EQ(WithoutScreen.Stats.PrescreenSatCalls, 0u);
  // The prescreen only ever narrows the candidate plan.
  EXPECT_LE(WithScreen.Stats.CandidatesPlanned,
            WithoutScreen.Stats.CandidatesPlanned);
}

namespace {

/// Failing tests for a checked-in TCAS mutant, segregated from the
/// session pool exactly as the bench/serve stack does, with regression
/// witnesses for the candidate screen flattened in behind them.
FailingTests tcasFailingTests(const Program &Faulty, size_t MaxTests,
                              size_t MaxPassing = 0) {
  DiagEngine Diags;
  auto Golden = parseAndAnalyze(tcasSource(), Diags);
  EXPECT_TRUE(Golden != nullptr);
  FailingTests FT =
      segregateFailingTests(*Golden, Faulty, tcasTestPool(300), "main",
                            tcasExecOptions(), MaxTests, MaxPassing);
  for (size_t T = 0; T < FT.PassingInputs.size(); ++T) {
    FT.Inputs.push_back(FT.PassingInputs[T]);
    FT.Goldens.push_back(FT.PassingGoldens[T]);
  }
  return FT;
}

} // namespace

TEST(RepairPooled, TcasV1OperatorSwapKnownAnswer) {
  // v1 weakens `Own_Tracked_Alt_Rate <= 600` to `<`; the near-miss swap
  // restores the boundary on the recorded fault line.
  const TcasMutant &V = tcasMutants()[0];
  ASSERT_EQ(V.Version, 1);
  auto P = compile(V.Source);
  // A boundary bug fails on almost nothing (one pool test), so failing
  // witnesses alone cannot screen out imposter fixes on correlated branch
  // conditions: regression witnesses do.
  FailingTests FT = tcasFailingTests(*P, 24, /*MaxPassing=*/64);
  ASSERT_FALSE(FT.Inputs.empty()) << "v1 must fail on the session pool";

  BugAssistDriver Driver(*P, "main", tcasUnrollOptions());
  Spec S;
  S.CheckObligations = false;
  RepairOptions RO;
  RO.Unroll = tcasUnrollOptions();
  RO.MaxCandidates = 128;
  RepairResult R =
      repairProgram(*P, Driver, "main", FT.Inputs, S, &FT.Goldens, RO);
  ASSERT_TRUE(R.Found) << "tried " << R.CandidatesTried;
  EXPECT_EQ(R.Suggestion.Line, V.BugLines[0]);
  EXPECT_NE(R.Suggestion.Description.find("'<' -> '<='"), std::string::npos)
      << R.Suggestion.Description;
}

TEST(RepairPooled, TcasV5OffByOneKnownAnswer) {
  // v5 assigns the downward advisory code (2) where the upward one (1)
  // belongs; kappa-1 is the paper's off-by-one fix.
  const TcasMutant &V = tcasMutants()[4];
  ASSERT_EQ(V.Version, 5);
  auto P = compile(V.Source);
  FailingTests FT = tcasFailingTests(*P, 6);
  ASSERT_FALSE(FT.Inputs.empty()) << "v5 must fail on the session pool";

  BugAssistDriver Driver(*P, "main", tcasUnrollOptions());
  Spec S;
  S.CheckObligations = false;
  RepairOptions RO;
  RO.Unroll = tcasUnrollOptions();
  RO.MaxCandidates = 128;
  RepairResult R =
      repairProgram(*P, Driver, "main", FT.Inputs, S, &FT.Goldens, RO);
  ASSERT_TRUE(R.Found) << "tried " << R.CandidatesTried;
  EXPECT_EQ(R.Suggestion.Line, V.BugLines[0]);
  EXPECT_NE(R.Suggestion.Description.find("2 -> 1"), std::string::npos)
      << R.Suggestion.Description;
}
