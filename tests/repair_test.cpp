//===- repair_test.cpp - Algorithm 2 repair tests --------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/Repair.h"

#include "interp/Interpreter.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace bugassist;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagEngine Diags;
  auto P = parseAndAnalyze(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.render();
  return P;
}

} // namespace

TEST(Repair, OffByOneOnMotivatingExample) {
  // Paper Section 2: the fix for Program 1 is changing the constant 2 on
  // the else branch; kappa - 1 = 1 passes all inputs.
  const char *Src = "int Array[3];\n"
                    "int main(int index) {\n"
                    "  if (index != 1)\n"
                    "    index = 2;\n"
                    "  else\n"
                    "    index = index + 2;\n"
                    "  int i = index;\n"
                    "  assert(i >= 0 && i < 3);\n"
                    "  return Array[i];\n"
                    "}\n";
  auto P = compile(Src);
  RepairResult R =
      repairProgram(*P, "main", {{InputValue::scalar(1)}}, Spec{});
  ASSERT_TRUE(R.Found) << "tried " << R.CandidatesTried << " candidates";
  // Valid fixes exist on the branch condition (line 3) and the else-branch
  // constant (line 6, the paper's suggested kappa-1 fix); either passes
  // verification.
  EXPECT_TRUE(R.Suggestion.Line == 3u || R.Suggestion.Line == 6u)
      << "line " << R.Suggestion.Line << ": " << R.Suggestion.Description;

  // Whatever was chosen, the fixed program must pass every input.
  Interpreter I(*R.Suggestion.FixedProgram, ExecOptions{16});
  for (int64_t X = -4; X <= 4; ++X)
    EXPECT_EQ(I.run("main", {InputValue::scalar(X)}).Status, ExecStatus::Ok)
        << "x=" << X;
}

TEST(Repair, OperatorSwapBoundaryCheck) {
  // Classic boundary bug: <= should be <.
  const char *Src = "int main(int x) {\n"
                    "  assume(x >= 0 && x <= 20);\n"
                    "  bool ok = x <= 10;\n"
                    "  int y = ok ? x : 0;\n"
                    "  assert(y < 10);\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  RepairResult R =
      repairProgram(*P, "main", {{InputValue::scalar(10)}}, Spec{});
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Suggestion.Line, 3u);
  EXPECT_NE(R.Suggestion.Description.find("'<='"), std::string::npos)
      << R.Suggestion.Description;
}

TEST(Repair, StrncatStyleOffByOne) {
  // Section 6.3 shape: the last argument to a trusted copy routine is one
  // too large; the library writes a terminator one past the copied length.
  const char *Src =
      "int SIZE_BUG;\n"
      "void copyN(int dest[8], int src[8], int n) {\n"
      "  int k = 0;\n"
      "  while (k < n) { dest[k] = src[k]; k = k + 1; }\n"
      "  dest[n] = 0;\n"
      "}\n"
      "int main(int s0) {\n"
      "  int buf[8];\n"
      "  int data[8];\n"
      "  data[0] = s0;\n"
      "  copyN(buf, data, 8);\n"
      "  return buf[0];\n"
      "}\n";
  auto P = compile(Src);
  RepairOptions Opts;
  Opts.Unroll.MaxLoopUnwind = 10;
  Opts.Unroll.TrustedFunctions.insert("copyN");
  RepairResult R = repairProgram(*P, "main", {{InputValue::scalar(1)}},
                                 Spec{}, nullptr, Opts);
  ASSERT_TRUE(R.Found) << "suspects:" << R.SuspectLines.size();
  // The fix is at the call site (line 11): 8 -> 7; the library itself is
  // trusted and untouched.
  EXPECT_EQ(R.Suggestion.Line, 11u);
  EXPECT_NE(R.Suggestion.Description.find("8 -> 7"), std::string::npos)
      << R.Suggestion.Description;
}

TEST(Repair, GoldenOutputDrivenRepair) {
  // max() with inverted comparison; goldens come from the true max.
  const char *Src = "int main(int a, int b) {\n"
                    "  if (a < b) return a;\n"
                    "  return b;\n"
                    "}\n";
  auto P = compile(Src);
  std::vector<InputVector> Fails = {
      {InputValue::scalar(1), InputValue::scalar(5)},
      {InputValue::scalar(7), InputValue::scalar(2)},
  };
  std::vector<int64_t> Goldens = {5, 7};
  Spec S;
  S.CheckObligations = false;
  RepairResult R = repairProgram(*P, "main", Fails, S, &Goldens);
  ASSERT_TRUE(R.Found);
  // '<' -> '>' (or an equivalent swap) on line 2 fixes both tests.
  EXPECT_EQ(R.Suggestion.Line, 2u);
  Interpreter I(*R.Suggestion.FixedProgram, ExecOptions{16});
  EXPECT_EQ(I.run("main", Fails[0]).ReturnValue, 5);
  EXPECT_EQ(I.run("main", Fails[1]).ReturnValue, 7);
}

TEST(Repair, ReportsFailureWhenNoNearMissFixExists) {
  // The bug is a completely wrong algorithm; no single off-by-one or
  // operator swap can satisfy the spec for all inputs.
  const char *Src = "int main(int x) {\n"
                    "  assume(x >= 0 && x <= 7);\n"
                    "  int y = 0;\n"
                    "  assert(y == x * x);\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  RepairResult R =
      repairProgram(*P, "main", {{InputValue::scalar(2)}}, Spec{});
  EXPECT_FALSE(R.Found);
  EXPECT_FALSE(R.SuspectLines.empty()) << "localization should still work";
}

TEST(Repair, RespectsCandidateLineRestriction) {
  const char *Src = "int main(int x) {\n"
                    "  int a = 3;\n"
                    "  int b = 3;\n"
                    "  assert(a + b == 5);\n"
                    "  return a + b;\n"
                    "}\n";
  auto P = compile(Src);
  RepairOptions Opts;
  Opts.CandidateLines = {3}; // only allow touching line 3
  RepairResult R = repairProgram(*P, "main", {{InputValue::scalar(0)}},
                                 Spec{}, nullptr, Opts);
  ASSERT_TRUE(R.Found);
  EXPECT_EQ(R.Suggestion.Line, 3u);
  EXPECT_NE(R.Suggestion.Description.find("3 -> 2"), std::string::npos);
}

TEST(Repair, MaxCandidatesBudget) {
  const char *Src = "int main(int x) {\n"
                    "  int y = x + 1;\n"
                    "  assert(y == x + 2);\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  RepairOptions Opts;
  Opts.MaxCandidates = 0;
  RepairResult R = repairProgram(*P, "main", {{InputValue::scalar(0)}},
                                 Spec{}, nullptr, Opts);
  EXPECT_FALSE(R.Found);
  EXPECT_EQ(R.CandidatesTried, 0u);
}
