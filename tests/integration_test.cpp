//===- integration_test.cpp - End-to-end pipeline tests ----------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Exercises the full pipelines the benches rely on: the Table 3 programs
// with their reduction recipes, and the Program 2 / Program 3 studies.
//
//===----------------------------------------------------------------------===//

#include "core/BugAssist.h"
#include "core/LoopDiagnosis.h"
#include "core/Repair.h"
#include "lang/Sema.h"
#include "programs/LargeBenchmarks.h"
#include "programs/SmallDemos.h"
#include "reduce/Concretizer.h"
#include "reduce/DeltaDebug.h"
#include "reduce/Slicer.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace bugassist;

namespace {

std::unique_ptr<Program> compile(const std::string &Src) {
  DiagEngine Diags;
  auto P = parseAndAnalyze(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.render();
  return P;
}

ExecOptions execOpts(const LargeBenchmark &B) {
  ExecOptions O;
  O.BitWidth = 16;
  O.CheckDivByZero = false;
  (void)B;
  return O;
}

UnrollOptions unrollOpts(const LargeBenchmark &B, bool Trusted,
                         bool Concolic) {
  UnrollOptions O;
  O.BitWidth = 16;
  O.MaxLoopUnwind = B.MaxLoopUnwind;
  O.LoopUnwindByLine = B.LoopUnwindByLine;
  O.MaxInlineDepth = B.MaxInlineDepth;
  O.HardLines = B.HardLines;
  if (Trusted)
    O.TrustedFunctions = B.TrustedFunctions;
  if (Concolic)
    O.ConcreteInputs = B.FailingInput;
  return O;
}

} // namespace

TEST(LargeBenchmarks, FailingInputsActuallyFail) {
  for (const LargeBenchmark &B : largeBenchmarks()) {
    auto Good = compile(B.CorrectSource);
    auto Bad = compile(B.FaultySource);
    Interpreter GI(*Good, execOpts(B));
    Interpreter BI(*Bad, execOpts(B));
    ExecResult G = GI.run("main", B.FailingInput);
    ExecResult F = BI.run("main", B.FailingInput);
    ASSERT_EQ(G.Status, ExecStatus::Ok) << B.Name;
    ASSERT_EQ(F.Status, ExecStatus::Ok) << B.Name;
    EXPECT_NE(G.ReturnValue, F.ReturnValue)
        << B.Name << ": input does not distinguish the fault";
  }
}

TEST(LargeBenchmarks, TotInfoSlicedLocalization) {
  const LargeBenchmark &B = largeBenchmark("tot_info");
  auto Good = compile(B.CorrectSource);
  auto Bad = compile(B.FaultySource);
  Interpreter GI(*Good, execOpts(B));
  int64_t Golden = GI.run("main", B.FailingInput).ReturnValue;

  UnrolledProgram UP =
      unrollProgram(*Bad, "main", unrollOpts(B, false, false));
  SliceStats Stats;
  UnrolledProgram Sliced = sliceProgram(UP, &Stats);
  EXPECT_LE(Stats.DefsAfter, Stats.DefsBefore);

  EncodeOptions EO;
  EO.BitWidth = 16;
  TraceFormula TF(encodeProgram(Sliced, EO));
  Spec S;
  S.CheckObligations = false;
  S.GoldenReturn = Golden;

  // The injected fault is a valid correction (deterministic single call).
  EXPECT_TRUE(isValidCorrection(TF, B.FailingInput, S, B.BugLines))
      << "tot_info fault line is not a correction";

  // A short, budgeted enumeration produces only sound diagnoses.
  LocalizeOptions LO;
  LO.MaxDiagnoses = 3;
  LO.ConflictBudget = 400000;
  LocalizationReport R = localizeFault(TF, B.FailingInput, S, LO);
  ASSERT_FALSE(R.Diagnoses.empty());
  for (const Diagnosis &D : R.Diagnoses)
    EXPECT_TRUE(isValidCorrection(TF, B.FailingInput, S, D.Lines))
        << "reported CoMSS is not actually a correction";
}

TEST(LargeBenchmarks, PrintTokensConcretizedLocalization) {
  const LargeBenchmark &B = largeBenchmark("print_tokens");
  auto Good = compile(B.CorrectSource);
  auto Bad = compile(B.FaultySource);
  Interpreter GI(*Good, execOpts(B));
  int64_t Golden = GI.run("main", B.FailingInput).ReturnValue;

  UnrolledProgram UP = unrollProgram(*Bad, "main", unrollOpts(B, true, true));
  EXPECT_GT(countConcretizableDefs(UP), 0u);
  ReductionReport RR = measureConcretization(UP, EncodeOptions{16});
  EXPECT_LT(RR.ClausesAfter, RR.ClausesBefore / 2)
      << "concretization should collapse the recursive tokenizer";

  EncodeOptions EO;
  EO.BitWidth = 16;
  EO.ConcretizeTrusted = true;
  TraceFormula TF(encodeProgram(UP, EO));
  Spec S;
  S.CheckObligations = false;
  S.GoldenReturn = Golden;
  LocalizeOptions LO;
  LO.MaxDiagnoses = 24;
  LocalizationReport R = localizeFault(TF, B.FailingInput, S, LO);
  ASSERT_FALSE(R.Diagnoses.empty());
  bool Found = false;
  for (uint32_t L : B.BugLines)
    Found |= std::find(R.AllLines.begin(), R.AllLines.end(), L) !=
             R.AllLines.end();
  EXPECT_TRUE(Found) << "print_tokens fault line not reported";
}

TEST(LargeBenchmarks, ScheduleDdminPlusSliceLocalization) {
  const LargeBenchmark &B = largeBenchmark("schedule");
  auto Good = compile(B.CorrectSource);
  auto Bad = compile(B.FaultySource);
  Interpreter GI(*Good, execOpts(B));
  Interpreter BI(*Bad, execOpts(B));

  // D: minimize the failing input (failure = outputs differ).
  auto Fails = [&](const InputVector &In) {
    ExecResult G = GI.run("main", In);
    ExecResult F = BI.run("main", In);
    return G.Status == ExecStatus::Ok && F.Status == ExecStatus::Ok &&
           G.ReturnValue != F.ReturnValue;
  };
  ASSERT_TRUE(Fails(B.FailingInput));
  DdminStats DS;
  InputVector Min = minimizeFailingInput(B.FailingInput, Fails, &DS);
  EXPECT_LE(DS.AtomsAfter, DS.AtomsBefore);

  // S: slice the trace built for the minimized input.
  int64_t Golden = GI.run("main", Min).ReturnValue;
  UnrolledProgram UP = unrollProgram(*Bad, "main", unrollOpts(B, false, false));
  SliceStats SS;
  UnrolledProgram Sliced = sliceProgram(UP, &SS);

  EncodeOptions EO;
  EO.BitWidth = 16;
  TraceFormula TF(encodeProgram(Sliced, EO));
  Spec S;
  S.CheckObligations = false;
  S.GoldenReturn = Golden;

  // Deterministic check (enumeration order varies): the injected fault
  // line must be a valid correction, i.e. appear in SOME CoMSS.
  EXPECT_TRUE(isValidCorrection(TF, Min, S, B.BugLines))
      << "schedule fault line is not a correction";

  // And a short enumeration produces sound diagnoses.
  LocalizeOptions LO;
  LO.MaxDiagnoses = 4;
  LocalizationReport R = localizeFault(TF, Min, S, LO);
  ASSERT_FALSE(R.Diagnoses.empty());
  for (const Diagnosis &D : R.Diagnoses)
    EXPECT_TRUE(isValidCorrection(TF, Min, S, D.Lines))
        << "reported CoMSS is not actually a correction";
}

TEST(LargeBenchmarks, Schedule2SlicedLocalization) {
  const LargeBenchmark &B = largeBenchmark("schedule2");
  auto Good = compile(B.CorrectSource);
  auto Bad = compile(B.FaultySource);
  Interpreter GI(*Good, execOpts(B));
  int64_t Golden = GI.run("main", B.FailingInput).ReturnValue;

  UnrolledProgram UP = unrollProgram(*Bad, "main", unrollOpts(B, false, false));
  UnrolledProgram Sliced = sliceProgram(UP);
  EncodeOptions EO;
  EO.BitWidth = 16;
  TraceFormula TF(encodeProgram(Sliced, EO));
  Spec S;
  S.CheckObligations = false;
  S.GoldenReturn = Golden;
  EXPECT_TRUE(isValidCorrection(TF, B.FailingInput, S, B.BugLines))
      << "schedule2 fault line is not a correction";
  LocalizeOptions LO;
  LO.MaxDiagnoses = 4;
  LocalizationReport R = localizeFault(TF, B.FailingInput, S, LO);
  ASSERT_FALSE(R.Diagnoses.empty());
  for (const Diagnosis &D : R.Diagnoses)
    EXPECT_TRUE(isValidCorrection(TF, B.FailingInput, S, D.Lines))
        << "reported CoMSS is not actually a correction";
}

TEST(SmallDemos, Program1LocalizeAndRepair) {
  auto P = compile(program1Source());
  BugAssistDriver Driver(*P, "main");
  auto Cex = Driver.findCounterexample(Spec{});
  ASSERT_TRUE(Cex.has_value());
  LocalizationReport R = Driver.localize(*Cex, Spec{});
  bool Found = std::find(R.AllLines.begin(), R.AllLines.end(),
                         program1BugLine()) != R.AllLines.end();
  EXPECT_TRUE(Found);
  RepairResult Fix = repairProgram(*P, "main", {*Cex}, Spec{});
  EXPECT_TRUE(Fix.Found);
}

TEST(SmallDemos, Program2StrncatStudy) {
  auto P = compile(program2Source());
  // All-nonzero source string: the library writes dest[8], out of bounds.
  InputVector Bad;
  for (int I = 0; I < 8; ++I)
    Bad.push_back(InputValue::scalar(I + 1));
  ExecOptions IO;
  IO.BitWidth = 16;
  Interpreter Interp(*P, IO);
  EXPECT_EQ(Interp.run("main", Bad).Status, ExecStatus::BoundsFail);

  // Localization with the library trusted blames the call site.
  UnrollOptions UO;
  UO.BitWidth = 16;
  UO.MaxLoopUnwind = 10;
  UO.TrustedFunctions.insert(program2LibraryFunction());
  UO.HardLines = program2HardLines();
  BugAssistDriver Driver(*P, "main", UO);
  LocalizationReport R = Driver.localize(Bad, Spec{});
  ASSERT_FALSE(R.Diagnoses.empty());
  bool CallSiteBlamed = std::find(R.AllLines.begin(), R.AllLines.end(),
                                  program2BugLine()) != R.AllLines.end();
  EXPECT_TRUE(CallSiteBlamed);

  // The off-by-one repair turns 8 into 7.
  RepairOptions RO;
  RO.Unroll = UO;
  RO.OperatorSwap = false;
  RepairResult Fix = repairProgram(*P, "main", {Bad}, Spec{}, nullptr, RO);
  ASSERT_TRUE(Fix.Found);
  EXPECT_EQ(Fix.Suggestion.Line, program2BugLine());
  EXPECT_NE(Fix.Suggestion.Description.find("8 -> 7"), std::string::npos)
      << Fix.Suggestion.Description;
}

TEST(SmallDemos, Program3FixedVersionIsSafe) {
  auto Fixed = compile(program3FixedSource());
  UnrollOptions UO;
  UO.MaxLoopUnwind = 10;
  BugAssistDriver Driver(*Fixed, "main", UO);
  auto Cex = Driver.findCounterexample(Spec{});
  EXPECT_FALSE(Cex.has_value()) << "fixed squareroot must verify";
}

TEST(SmallDemos, Program3LoopDiagnosis) {
  auto P = compile(program3Source());
  LoopDiagnosisOptions Opts;
  Opts.Unroll.MaxLoopUnwind = 10;
  Opts.Localize.MaxDiagnoses = 8;
  LoopDiagnosisResult R = diagnoseLoopFault(*P, "main", {}, Spec{}, Opts);
  ASSERT_FALSE(R.First.empty());
  bool BugLineFirst = false;
  for (const IterationSuspect &IS : R.First)
    BugLineFirst |= IS.Line == program3BugLine();
  EXPECT_TRUE(BugLineFirst);
}
