//===- lbd_test.cpp - LBD clause management unit & property tests ------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Covers the Glucose-style learned-clause machinery: LBD computation at
// learn time on formulas with hand-checked decision-level signatures,
// three-tier reduceDB retention (core clauses survive every reduction),
// LBD preservation across relocating arena GC, EMA restart triggering and
// trail-EMA restart blocking, and a differential check that seed-pinned
// options (Luby + activity halving) reproduce seed-equivalent results.
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"

#include "cnf/Cnf.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace bugassist;

namespace {

bool bruteForceSat(int NumVars, const std::vector<Clause> &Clauses) {
  for (uint64_t Mask = 0; Mask < (1ull << NumVars); ++Mask) {
    bool AllSat = true;
    for (const Clause &C : Clauses) {
      bool Sat = false;
      for (Lit L : C) {
        bool V = (Mask >> L.var()) & 1;
        if (V != L.negated()) {
          Sat = true;
          break;
        }
      }
      if (!Sat) {
        AllSat = false;
        break;
      }
    }
    if (AllSat)
      return true;
  }
  return false;
}

std::vector<Clause> randomInstance(Rng &R, int NumVars, int NumClauses,
                                   int ClauseLen) {
  std::vector<Clause> Cs;
  for (int I = 0; I < NumClauses; ++I) {
    Clause C;
    std::set<Var> Used;
    while (static_cast<int>(C.size()) < ClauseLen) {
      Var V = static_cast<Var>(R.below(NumVars));
      if (!Used.insert(V).second)
        continue;
      C.push_back(mkLit(V, R.chance(1, 2)));
    }
    Cs.push_back(std::move(C));
  }
  return Cs;
}

/// PHP(Holes+1, Holes): UNSAT, forces real conflict analysis and learning.
void addPigeonhole(Solver &S, int Holes) {
  int Pigeons = Holes + 1;
  auto VarOf = [Holes](int P, int H) { return P * Holes + H; };
  S.ensureVars(Pigeons * Holes);
  for (int P = 0; P < Pigeons; ++P) {
    Clause C;
    for (int H = 0; H < Holes; ++H)
      C.push_back(mkLit(VarOf(P, H)));
    S.addClause(C);
  }
  for (int H = 0; H < Holes; ++H)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        S.addClause({~mkLit(VarOf(P1, H)), ~mkLit(VarOf(P2, H))});
}

} // namespace

// Two assumption levels feed the conflict: a@1 implies x, b@2 implies y,
// and {~x,~y,z} / {~x,~y,~z} clash at level 2. First-UIP learns (~y \/ ~x)
// whose literals sit at levels {2, 1}: LBD must be exactly 2.
TEST(Lbd, HandCheckedTwoLevelSignature) {
  // Preprocessing off: variable elimination would resolve away x/z and
  // decide the formula without any conflict, and this test is about the
  // exact learnt clause of an unsimplified search.
  Solver::Options O;
  O.Preprocess = false;
  Solver S{O};
  Var A = S.newVar(), B = S.newVar(), X = S.newVar(), Y = S.newVar(),
      Z = S.newVar();
  ASSERT_TRUE(S.addClause({~mkLit(A), mkLit(X)}));
  ASSERT_TRUE(S.addClause({~mkLit(B), mkLit(Y)}));
  ASSERT_TRUE(S.addClause({~mkLit(X), ~mkLit(Y), mkLit(Z)}));
  ASSERT_TRUE(S.addClause({~mkLit(X), ~mkLit(Y), ~mkLit(Z)}));
  ASSERT_EQ(S.solve({mkLit(A), mkLit(B)}), LBool::False);
  ASSERT_EQ(S.stats().LearnedClauses, 1u);
  EXPECT_EQ(S.stats().LbdSum, 2u);
  std::vector<uint32_t> Lbds = S.learntLbds();
  ASSERT_EQ(Lbds.size(), 1u);
  EXPECT_EQ(Lbds[0], 2u);
  // Binary and LBD <= CoreLbdCut: lands in the permanent core tier.
  EXPECT_EQ(S.stats().CoreLearnts, 1u);
  EXPECT_EQ(S.stats().MidLearnts + S.stats().LocalLearnts, 0u);
}

// Three assumption levels: a@1 -> x, b@2 -> y, c@3 -> w, then
// {~x,~y,~w,z} / {~x,~y,~w,~z} clash at level 3. The first-UIP clause is
// (~w \/ ~x \/ ~y) with level signature {3, 1, 2}: LBD exactly 3.
TEST(Lbd, HandCheckedThreeLevelSignature) {
  Solver::Options O;
  O.Preprocess = false; // as above: keep the hand-checked search intact
  Solver S{O};
  Var A = S.newVar(), B = S.newVar(), C = S.newVar(), X = S.newVar(),
      Y = S.newVar(), W = S.newVar(), Z = S.newVar();
  ASSERT_TRUE(S.addClause({~mkLit(A), mkLit(X)}));
  ASSERT_TRUE(S.addClause({~mkLit(B), mkLit(Y)}));
  ASSERT_TRUE(S.addClause({~mkLit(C), mkLit(W)}));
  ASSERT_TRUE(S.addClause({~mkLit(X), ~mkLit(Y), ~mkLit(W), mkLit(Z)}));
  ASSERT_TRUE(S.addClause({~mkLit(X), ~mkLit(Y), ~mkLit(W), ~mkLit(Z)}));
  ASSERT_EQ(S.solve({mkLit(A), mkLit(B), mkLit(C)}), LBool::False);
  ASSERT_EQ(S.stats().LearnedClauses, 1u);
  EXPECT_EQ(S.stats().LbdSum, 3u);
  std::vector<uint32_t> Lbds = S.learntLbds();
  ASSERT_EQ(Lbds.size(), 1u);
  EXPECT_EQ(Lbds[0], 3u);
  EXPECT_EQ(S.stats().CoreLearnts, 1u); // LBD 3 <= default core cut
}

// Core clauses (LBD <= 3 and binaries) survive arbitrarily many reductions;
// repeated reduceDB calls must never shrink the core population.
TEST(Lbd, ReduceDbKeepsCoreTier) {
  Solver S;
  addPigeonhole(S, 6);
  ASSERT_EQ(S.solve(), LBool::False);
  ASSERT_GT(S.stats().LearnedClauses, 0u);

  auto CountAtMost = [](const std::vector<uint32_t> &Lbds, uint32_t Cut) {
    return std::count_if(Lbds.begin(), Lbds.end(),
                         [Cut](uint32_t L) { return L <= Cut; });
  };
  std::vector<uint32_t> Before = S.learntLbds();
  auto CoreBefore = CountAtMost(Before, 3);
  uint64_t CoreGaugeBefore = S.stats().CoreLearnts;
  ASSERT_GT(CoreGaugeBefore, 0u);

  for (int I = 0; I < 5; ++I)
    S.reduceLearntDb();

  std::vector<uint32_t> After = S.learntLbds();
  // Tightening during analysis can only promote into the cut, never out.
  EXPECT_GE(CountAtMost(After, 3), CoreBefore)
      << "core-tier clauses were deleted by reduceDB";
  EXPECT_GE(S.stats().CoreLearnts, CoreGaugeBefore);
  EXPECT_LE(After.size(), Before.size());
  // The gauges agree with the live clause count.
  EXPECT_EQ(S.stats().CoreLearnts + S.stats().MidLearnts +
                S.stats().LocalLearnts,
            After.size());
}

// With a tiny reduction trigger the solver reduces aggressively mid-search;
// deletions must actually happen and never change answers.
TEST(Lbd, AggressiveReductionStaysSound) {
  Solver::Options O;
  O.MaxLearntsBase = 20;
  Solver S(O);
  addPigeonhole(S, 7);
  EXPECT_EQ(S.solve(), LBool::False);
  EXPECT_GT(S.stats().DeletedClauses, 0u);
  EXPECT_GT(S.stats().LearnedClauses, 0u);
}

// Relocating arena GC must carry the LBD word: the multiset of live learnt
// LBDs is invariant under collection, and the solver keeps working.
TEST(Lbd, GarbageCollectionPreservesLbd) {
  Solver S;
  addPigeonhole(S, 6);
  ASSERT_EQ(S.solve(), LBool::False);
  S.reduceLearntDb(); // create arena waste

  std::vector<uint32_t> Before = S.learntLbds();
  std::sort(Before.begin(), Before.end());
  uint64_t Gc = S.stats().GcRuns;
  S.forceGarbageCollect();
  EXPECT_EQ(S.stats().GcRuns, Gc + 1);
  std::vector<uint32_t> After = S.learntLbds();
  std::sort(After.begin(), After.end());
  EXPECT_EQ(Before, After) << "GC relocation lost or corrupted LBDs";

  // Watches and reasons survived relocation: the instance still refutes.
  EXPECT_EQ(S.solve(), LBool::False);
}

// A margin of 0 makes a restart pending after the first conflict, so the
// EMA policy must restart every RestartMinConflicts conflicts.
TEST(Lbd, EmaRestartsFire) {
  Solver::Options O;
  O.RestartMargin = 0.0;
  O.RestartMinConflicts = 10;
  Solver S(O);
  addPigeonhole(S, 6);
  ASSERT_EQ(S.solve(), LBool::False);
  ASSERT_GT(S.stats().Conflicts, 20u);
  EXPECT_GT(S.stats().Restarts, 0u);
  EXPECT_GE(S.stats().Restarts, S.stats().Conflicts / 10 / 2)
      << "EMA restarts fired far less often than the forced cadence";
}

// A blocking margin of 0 cancels every pending restart at every conflict:
// restarts stay at zero while the blocked counter climbs.
TEST(Lbd, TrailEmaBlocksRestarts) {
  Solver::Options O;
  O.RestartMargin = 0.0; // every conflict makes a restart pending
  O.RestartMinConflicts = 10;
  O.BlockMargin = 0.0; // every conflict blocks it again
  O.BlockMinConflicts = 0;
  Solver S(O);
  addPigeonhole(S, 6);
  ASSERT_EQ(S.solve(), LBool::False);
  ASSERT_GT(S.stats().Conflicts, 10u);
  EXPECT_EQ(S.stats().Restarts, 0u);
  EXPECT_GT(S.stats().RestartsBlocked, 0u);
}

// Seed-pinned options must expose the seed policies and keep every learnt
// clause in the local tier (no core promotion in activity-halving mode).
TEST(Lbd, SeedOptionsPinSeedPolicies) {
  Solver::Options O = Solver::Options::seed();
  EXPECT_EQ(O.Restart, Solver::Options::RestartPolicy::Luby);
  EXPECT_EQ(O.Retention, Solver::Options::RetentionPolicy::ActivityHalving);
  Solver S(O);
  addPigeonhole(S, 5);
  ASSERT_EQ(S.solve(), LBool::False);
  ASSERT_GT(S.stats().LearnedClauses, 0u);
  EXPECT_EQ(S.stats().CoreLearnts, 0u);
  EXPECT_EQ(S.stats().MidLearnts, 0u);
  // LBDs are still computed and surfaced under the seed policy.
  EXPECT_GT(S.stats().LbdSum, 0u);
  EXPECT_GT(S.stats().avgLearntLbd(), 0.0);
}

// Differential property: the Luby-pinned seed configuration and the default
// Glucose configuration agree with brute force -- and hence each other -- on
// random instances around the phase transition, for plain solves and for
// solves under assumptions (including core re-verification).
TEST(Lbd, SeedAndGlucosePoliciesAgree) {
  Rng R(2026);
  for (int Round = 0; Round < 60; ++Round) {
    int NumVars = 12;
    auto Cs = randomInstance(R, NumVars, 51, 3);
    Solver Seeded{Solver::Options::seed()};
    // The assumption probes below assume vars 0..4 after an unassumed
    // solve whose preprocessing pass may eliminate them; keep the pass off
    // so the comparison isolates the retention/restart policies.
    Solver::Options GlucoseOpts;
    GlucoseOpts.Preprocess = false;
    Solver Glucose{GlucoseOpts};
    Seeded.ensureVars(NumVars);
    Glucose.ensureVars(NumVars);
    bool OkS = true, OkG = true;
    for (const Clause &C : Cs) {
      OkS = OkS && Seeded.addClause(C);
      OkG = OkG && Glucose.addClause(C);
    }
    EXPECT_EQ(OkS, OkG);
    bool Expected = bruteForceSat(NumVars, Cs);
    if (!OkS || !OkG) {
      EXPECT_FALSE(Expected);
      continue;
    }
    LBool RS = Seeded.solve();
    LBool RG = Glucose.solve();
    ASSERT_NE(RS, LBool::Undef);
    EXPECT_EQ(RS, RG) << "policies disagree on round " << Round;
    EXPECT_EQ(RS == LBool::True, Expected);

    // Under random assumptions both policies agree, and a seed-policy core
    // re-verifies on a glucose-policy solver (and vice versa).
    std::vector<Lit> Assumps;
    for (Var V = 0; V < 5; ++V)
      Assumps.push_back(mkLit(V, R.chance(1, 2)));
    LBool AS = Seeded.solve(Assumps);
    LBool AG = Glucose.solve(Assumps);
    EXPECT_EQ(AS, AG);
    if (AS == LBool::False && AG == LBool::False) {
      Solver Check;
      Check.ensureVars(NumVars);
      bool OkC = true;
      for (const Clause &C : Cs)
        OkC = OkC && Check.addClause(C);
      ASSERT_TRUE(OkC);
      EXPECT_EQ(Check.solve(Seeded.conflictCore()), LBool::False);
      Solver Check2{Solver::Options::seed()};
      Check2.ensureVars(NumVars);
      bool OkC2 = true;
      for (const Clause &C : Cs)
        OkC2 = OkC2 && Check2.addClause(C);
      ASSERT_TRUE(OkC2);
      EXPECT_EQ(Check2.solve(Glucose.conflictCore()), LBool::False);
    }
  }
}

// Incremental MaxSAT-style reuse under the tier policy: repeated refutation
// of the same assumptions gets cheaper because retained (core) clauses
// short-circuit the proof, exactly the property PR 1 built on.
TEST(Lbd, TierRetentionKeepsIncrementalWin) {
  const int Holes = 6, Pigeons = Holes + 1;
  Solver S; // default glucose policies
  S.ensureVars(Pigeons * Holes);
  auto VarOf = [](int P, int H) { return P * Holes + H; };
  std::vector<Lit> Assumps;
  for (int P = 0; P < Pigeons; ++P) {
    Clause C;
    for (int H = 0; H < Holes; ++H)
      C.push_back(mkLit(VarOf(P, H)));
    Var G = S.newVar();
    C.push_back(mkLit(G, /*Negated=*/true));
    ASSERT_TRUE(S.addClause(C));
    Assumps.push_back(mkLit(G));
  }
  for (int H = 0; H < Holes; ++H)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        ASSERT_TRUE(S.addClause({~mkLit(VarOf(P1, H)), ~mkLit(VarOf(P2, H))}));

  ASSERT_EQ(S.solve(Assumps), LBool::False);
  const uint64_t Conflicts1 = S.stats().Conflicts;
  ASSERT_GT(Conflicts1, 0u);
  ASSERT_EQ(S.solve(Assumps), LBool::False);
  EXPECT_LT(S.stats().Conflicts - Conflicts1, Conflicts1)
      << "tier retention lost the incremental re-refutation win";
  Assumps.pop_back();
  EXPECT_EQ(S.solve(Assumps), LBool::True);
}
