//===- loop_test.cpp - Section 5.2 loop-iteration diagnosis tests ----------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/LoopDiagnosis.h"

#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace bugassist;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagEngine Diags;
  auto P = parseAndAnalyze(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.render();
  return P;
}

// Program 3 of the paper (Section 6.4): nearest integer square root with
// the bug `res = i` (should be `res = i - 1`). With val = 50 the loop runs
// 7 times and the weighted localization must tie loop suspects to the last
// feasible iteration. Source lines:
//  1 int main() {
//  2   int val = 50;
//  3   int i = 1;
//  4   int v = 0;
//  5   int res = 0;
//  6   while (v < val) {
//  7     v = v + 2 * i + 1;
//  8     i = i + 1;
//  9   }
// 10   res = i;
// 11   assert(res * res <= val && (res + 1) * (res + 1) > val);
// 12   return res;
// 13 }
const char *Squareroot = "int main() {\n"
                         "  int val = 50;\n"
                         "  int i = 1;\n"
                         "  int v = 0;\n"
                         "  int res = 0;\n"
                         "  while (v < val) {\n"
                         "    v = v + 2 * i + 1;\n"
                         "    i = i + 1;\n"
                         "  }\n"
                         "  res = i;\n"
                         "  assert(res * res <= val && (res + 1) * (res + 1) > val);\n"
                         "  return res;\n"
                         "}\n";

} // namespace

TEST(LoopDiagnosis, SquarerootLocalizesOutsideLoopFirst) {
  auto P = compile(Squareroot);
  LoopDiagnosisOptions Opts;
  Opts.Unroll.MaxLoopUnwind = 10;
  Opts.Localize.MaxDiagnoses = 12;
  LoopDiagnosisResult R =
      diagnoseLoopFault(*P, "main", /*FailingTest=*/{}, Spec{}, Opts);

  ASSERT_FALSE(R.First.empty());
  // Non-loop soft clauses carry the base weight alpha, which is lighter
  // than any alpha + eta - kappa, so the optimal CoMSS blames a statement
  // outside the loop first -- exactly the paper's point that the fault of
  // Program 3 lies at `res = i` (line 10) even though the loop must be
  // analyzed to see it.
  EXPECT_EQ(R.First[0].Iteration, 0u);
  bool Line10First = false;
  for (const IterationSuspect &IS : R.First)
    Line10First |= IS.Line == 10;
  EXPECT_TRUE(Line10First) << "first diagnosis should include res = i";
}

TEST(LoopDiagnosis, SquarerootReportsLastFeasibleIteration) {
  auto P = compile(Squareroot);
  LoopDiagnosisOptions Opts;
  Opts.Unroll.MaxLoopUnwind = 10;
  Opts.Localize.MaxDiagnoses = 16;
  LoopDiagnosisResult R =
      diagnoseLoopFault(*P, "main", /*FailingTest=*/{}, Spec{}, Opts);

  // Loop-body suspects must appear among the enumerated diagnoses. The
  // cheapest CoMSS that fixes the failure *by changing only the loop* is
  // at kappa = 7: the last executed iteration of the 7-iteration run (the
  // paper narrates this boundary as the loop's 8th unwinding, where i
  // first carries the bad value 8).
  std::vector<IterationSuspect> LoopSuspects;
  for (const IterationSuspect &IS : R.All)
    if (IS.Iteration > 0)
      LoopSuspects.push_back(IS);
  ASSERT_FALSE(LoopSuspects.empty()) << "no per-iteration suspects reported";

  std::optional<uint32_t> FirstSingletonLoopIter;
  for (const Diagnosis &D : R.Report.Diagnoses) {
    if (D.Lines.size() == 1 && D.Unwindings[0] > 0) {
      FirstSingletonLoopIter = D.Unwindings[0];
      break;
    }
  }
  ASSERT_TRUE(FirstSingletonLoopIter.has_value())
      << "no pure in-loop diagnosis enumerated";
  EXPECT_EQ(*FirstSingletonLoopIter, 7u);
}

TEST(LoopDiagnosis, IterationWeightsPreferLateIterations) {
  // A loop that goes wrong only at the 3rd iteration: x doubles each round
  // and the spec wants x <= 4 at the end; disabling iteration 3 alone is
  // the cheapest loop fix.
  const char *Src = "int main() {\n"
                    "  int x = 1;\n"
                    "  int k = 0;\n"
                    "  while (k < 3) {\n"
                    "    x = x * 2;\n"
                    "    k = k + 1;\n"
                    "  }\n"
                    "  assert(x <= 4);\n"
                    "  return x;\n"
                    "}\n";
  auto P = compile(Src);
  LoopDiagnosisOptions Opts;
  Opts.Unroll.MaxLoopUnwind = 5;
  Opts.Localize.MaxDiagnoses = 10;
  LoopDiagnosisResult R =
      diagnoseLoopFault(*P, "main", /*FailingTest=*/{}, Spec{}, Opts);

  std::vector<IterationSuspect> LoopSuspects;
  for (const IterationSuspect &IS : R.All)
    if (IS.Iteration > 0)
      LoopSuspects.push_back(IS);
  ASSERT_FALSE(LoopSuspects.empty());
  EXPECT_EQ(LoopSuspects.front().Iteration, 3u)
      << "the failure is introduced at iteration 3";
}

TEST(LoopDiagnosis, RestrictedModeAnswersIterationDirectly) {
  // With everything outside the loop pinned enabled, the first CoMSS must
  // consist of loop groups only and name the boundary iteration.
  auto P = compile(Squareroot);
  LoopDiagnosisOptions Opts;
  Opts.Unroll.MaxLoopUnwind = 10;
  Opts.RestrictToLoopGroups = true;
  Opts.Localize.MaxDiagnoses = 3;
  LoopDiagnosisResult R =
      diagnoseLoopFault(*P, "main", /*FailingTest=*/{}, Spec{}, Opts);
  ASSERT_FALSE(R.First.empty());
  for (const IterationSuspect &IS : R.First)
    EXPECT_GT(IS.Iteration, 0u) << "non-loop suspect in restricted mode";
  EXPECT_EQ(R.First[0].Iteration, 7u)
      << "the last executed iteration is the cheapest in-loop fix";
}

TEST(LoopDiagnosis, NoLoopMeansNoIterationSuspects) {
  const char *Src = "int main(int x) {\n"
                    "  int y = x + 1;\n"
                    "  assert(y == x);\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  LoopDiagnosisOptions Opts;
  LoopDiagnosisResult R = diagnoseLoopFault(
      *P, "main", {InputValue::scalar(0)}, Spec{}, Opts);
  ASSERT_FALSE(R.All.empty());
  for (const IterationSuspect &IS : R.All)
    EXPECT_EQ(IS.Iteration, 0u);
}
