//===- serve_test.cpp - bugassist serve end-to-end tests ----------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Holds `bugassist serve` to its documented contract (docs/SERVE.md): a
// batch of requests produces bodies byte-identical to the equivalent
// one-shot CLI runs at every --threads width, each distinct program is
// parsed and encoded exactly once (cache counters asserted), a budget
// exhaustion returns INCOMPLETE without poisoning the pool, and a
// malformed request line is rejected without killing the daemon loop.
//
// Frames are compared as parsed (id, status, exit, body) tuples, never as
// raw streams: per the determinism contract, elapsed_ms and -- at widths
// above one -- *which* of two same-program requests pays the cache miss
// are scheduling-dependent, while everything else is not.
//
//===----------------------------------------------------------------------===//

#include "CliTestUtils.h"
#include "core/Pipeline.h"
#include "programs/Tcas.h"
#include "programs/TcasMutants.h"
#include "serve/Json.h"
#include "serve/LocalizeServer.h"
#include "serve/OrderedEmitter.h"
#include "support/FaultInject.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace bugassist;

using clitest::Cli;
using clitest::exitStatus;
using clitest::Instances;
using clitest::runCommand;

namespace {

/// Writes \p Text to a fresh temp file and returns its path.
std::string writeTempFile(const std::string &Text) {
  char Path[] = "/tmp/bugassist_serve_XXXXXX";
  int Fd = mkstemp(Path);
  EXPECT_GE(Fd, 0);
  EXPECT_EQ(write(Fd, Text.data(), Text.size()),
            static_cast<ssize_t>(Text.size()));
  close(Fd);
  return Path;
}

/// One parsed response frame: the header fields the contract makes
/// deterministic, the verbatim body, and the trailer keys (values of the
/// timing/search counters are machine-dependent; their presence is not).
struct Frame {
  std::string Id;
  std::string Cmd;
  std::string Status;
  int64_t Exit = -1;
  std::string Code;       ///< structured error code ("ok", "cancelled", ...)
  std::string CacheField; ///< "hit", "miss", or "" when absent
  std::string ErrorField; ///< "" when absent
  std::string Body;
  std::vector<std::string> TrailerKeys;
};

/// Splits a serve output stream into frames, failing the test on any
/// framing violation (non-JSON header, body shorter than `bytes`, missing
/// trailer).
std::vector<Frame> parseFrames(const std::string &Raw) {
  std::vector<Frame> Frames;
  size_t Pos = 0;
  while (Pos < Raw.size()) {
    size_t Nl = Raw.find('\n', Pos);
    EXPECT_NE(Nl, std::string::npos) << "unterminated header line";
    if (Nl == std::string::npos)
      break;
    std::string Error;
    auto Header = parseJson(Raw.substr(Pos, Nl - Pos), Error);
    EXPECT_TRUE(Header.has_value()) << "bad header: " << Error;
    if (!Header)
      break;

    Frame F;
    const JsonValue *Id = Header->find("id");
    const JsonValue *Cmd = Header->find("cmd");
    const JsonValue *Status = Header->find("status");
    const JsonValue *Exit = Header->find("exit");
    const JsonValue *Bytes = Header->find("bytes");
    EXPECT_TRUE(Id && Cmd && Status && Exit && Bytes)
        << "header missing a required field: " << Raw.substr(Pos, Nl - Pos);
    if (!(Id && Cmd && Status && Exit && Bytes))
      break;
    F.Id = Id->Text;
    F.Cmd = Cmd->Text;
    F.Status = Status->Text;
    std::optional<int64_t> ExitVal = Exit->asInt64();
    std::optional<int64_t> BodyLenVal = Bytes->asInt64();
    EXPECT_TRUE(ExitVal && BodyLenVal);
    if (!(ExitVal && BodyLenVal))
      break;
    F.Exit = *ExitVal;
    int64_t BodyLen = *BodyLenVal;
    if (const JsonValue *C = Header->find("code"))
      F.Code = C->Text;
    if (const JsonValue *C = Header->find("cache"))
      F.CacheField = C->Text;
    if (const JsonValue *E = Header->find("error"))
      F.ErrorField = E->Text;

    Pos = Nl + 1;
    EXPECT_LE(Pos + static_cast<size_t>(BodyLen), Raw.size())
        << "body shorter than advertised for id " << F.Id;
    F.Body = Raw.substr(Pos, static_cast<size_t>(BodyLen));
    Pos += static_cast<size_t>(BodyLen);

    Nl = Raw.find('\n', Pos);
    EXPECT_NE(Nl, std::string::npos) << "missing trailer for id " << F.Id;
    if (Nl == std::string::npos)
      break;
    auto Trailer = parseJson(Raw.substr(Pos, Nl - Pos), Error);
    EXPECT_TRUE(Trailer.has_value()) << "bad trailer: " << Error;
    if (Trailer)
      for (const auto &KV : Trailer->Members)
        F.TrailerKeys.push_back(KV.first);
    Pos = Nl + 1;
    Frames.push_back(std::move(F));
  }
  return Frames;
}

/// Runs a batch through the library entry point at \p Threads.
struct LibRun {
  ServeSummary Summary;
  std::vector<Frame> Frames;
  std::string ErrLine;
};

LibRun runServeOpts(const std::string &Batch, const ServeOptions &SO) {
  LibRun R;
  LocalizeServer Server(SO);
  std::istringstream In(Batch);
  std::ostringstream Out, Err;
  R.Summary = Server.run(In, Out, Err);
  R.Frames = parseFrames(Out.str());
  R.ErrLine = Err.str();
  return R;
}

LibRun runServe(const std::string &Batch, size_t Threads) {
  ServeOptions SO;
  SO.Threads = Threads;
  return runServeOpts(Batch, SO);
}

/// Drops DIMACS `c` comment lines: serve maxsat/sat bodies are the
/// one-shot CLI stdout minus these.
std::string stripCommentLines(const std::string &Text) {
  std::string Out;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Nl = Text.find('\n', Pos);
    size_t End = Nl == std::string::npos ? Text.size() : Nl + 1;
    if (!(Text[Pos] == 'c' && (Pos + 1 == End || Text[Pos + 1] == ' ' ||
                               Text[Pos + 1] == '\n')))
      Out.append(Text, Pos, End - Pos);
    Pos = End;
  }
  return Out;
}

/// The failing TCAS v2 test the cli_test parity test uses, found the
/// library way once per process.
struct TcasFailure {
  std::string Input;
  int64_t Golden = 0;
};

const TcasFailure &tcasV2Failure() {
  static TcasFailure F = [] {
    DiagEngine Diags;
    auto Golden = parseAndAnalyze(tcasSource(), Diags);
    auto Faulty = parseAndAnalyze(tcasMutants()[1].Source, Diags);
    EXPECT_TRUE(Golden && Faulty) << Diags.render();
    FailingTests Failing =
        segregateFailingTests(*Golden, *Faulty, tcasTestPool(1600), "main",
                              tcasExecOptions(), /*MaxTests=*/1);
    EXPECT_EQ(Failing.Inputs.size(), 1u);
    TcasFailure R;
    R.Input = renderInputVector(Failing.Inputs[0]);
    R.Golden = Failing.Goldens[0];
    return R;
  }();
  return F;
}

/// The request mirroring cli_test's flag set for TCAS v2, minus the id.
std::string tcasV2RequestFields() {
  const TcasFailure &F = tcasV2Failure();
  return "\"cmd\":\"localize\",\"tcas\":2,\"input\":\"" + F.Input +
         "\",\"golden\":" + std::to_string(F.Golden) +
         ",\"check_obligations\":false,\"bounds\":false,\"bitwidth\":16,"
         "\"hard_lines\":\"69-84\",\"max_diagnoses\":24";
}

const char *ArrayProgram = "int Array[3];\n"
                           "int main(int index) {\n"
                           "  if (index != 1)\n"
                           "    index = 2;\n"
                           "  else\n"
                           "    index = index + 2;\n"
                           "  int i = index;\n"
                           "  assert(i >= 0 && i < 3);\n"
                           "  return Array[i];\n"
                           "}\n";

} // namespace

// --- batch mode: byte parity with the one-shot CLI ----------------------------

TEST(ServeBatch, MixedBatchMatchesOneShotCliAtEveryThreadWidth) {
  const std::string CnfText = "p cnf 2 2\n1 2 0\n-1 0\n";

  // One-shot CLI expectations, computed once.
  int Exit = 0;
  std::string TcasFile = writeTempFile(tcasMutants()[1].Source);
  const TcasFailure &F = tcasV2Failure();
  std::string LocalizeExpected = runCommand(
      Cli + " localize " + TcasFile + " --input \"" + F.Input +
          "\" --golden " + std::to_string(F.Golden) +
          " --no-obligations --no-bounds --bitwidth 16 --hard-lines 69-84"
          " --max-diagnoses 24",
      Exit);
  ASSERT_EQ(exitStatus(Exit), 0);
  ASSERT_FALSE(LocalizeExpected.empty());

  std::string ArrayFile = writeTempFile(ArrayProgram);
  std::string JsonExpected =
      runCommand(Cli + " localize " + ArrayFile + " --json", Exit);
  ASSERT_EQ(exitStatus(Exit), 0);

  std::string MaxSatExpected = stripCommentLines(
      runCommand(Cli + " maxsat " + Instances + "/weighted.wcnf", Exit));
  ASSERT_EQ(exitStatus(Exit), 0);

  std::string CnfFile = writeTempFile(CnfText);
  std::string SatExpected =
      stripCommentLines(runCommand(Cli + " sat " + CnfFile, Exit));
  ASSERT_EQ(exitStatus(Exit), 0);

  // The batch: two identical TCAS queries (one must hit the cache), a
  // JSON localize on inline source, a maxsat by file, a sat by inline CNF.
  std::string Batch =
      "{\"id\":\"t1\"," + tcasV2RequestFields() + "}\n" +
      "{\"id\":\"t2\"," + tcasV2RequestFields() + "}\n" +
      "{\"id\":\"arr\",\"cmd\":\"localize\",\"source\":\"" +
      jsonEscape(ArrayProgram) + "\",\"json\":true}\n" +
      "{\"id\":\"ms\",\"cmd\":\"maxsat\",\"file\":\"" + Instances +
      "/weighted.wcnf\"}\n" +
      "{\"id\":\"st\",\"cmd\":\"sat\",\"cnf\":\"" + jsonEscape(CnfText) +
      "\"}\n";
  std::string BatchFile = writeTempFile(Batch);

  std::vector<Frame> First;
  for (size_t Threads : {1u, 2u, 4u}) {
    std::string ErrFile = writeTempFile("");
    std::string Out = runCommand(Cli + " serve --batch " + BatchFile +
                                     " --threads " +
                                     std::to_string(Threads) + " 2>" +
                                     ErrFile,
                                 Exit);
    EXPECT_EQ(exitStatus(Exit), 0) << "threads " << Threads;

    std::vector<Frame> Frames = parseFrames(Out);
    ASSERT_EQ(Frames.size(), 5u) << "threads " << Threads;

    // Responses arrive in request order, all ok/exit 0.
    const char *Ids[] = {"t1", "t2", "arr", "ms", "st"};
    int Misses = 0, Hits = 0;
    for (size_t I = 0; I < 5; ++I) {
      EXPECT_EQ(Frames[I].Id, Ids[I]) << "threads " << Threads;
      EXPECT_EQ(Frames[I].Status, "ok");
      EXPECT_EQ(Frames[I].Exit, 0);
      Misses += Frames[I].CacheField == "miss";
      Hits += Frames[I].CacheField == "hit";
    }
    // Two distinct programs were encoded; the third localize of a known
    // program hit. Which of t1/t2 pays the miss is scheduling-dependent
    // at widths above one, so only the totals are asserted.
    EXPECT_EQ(Misses, 2) << "threads " << Threads;
    EXPECT_EQ(Hits, 1) << "threads " << Threads;

    // Bodies are the one-shot CLI's stdout, byte for byte.
    EXPECT_EQ(Frames[0].Body, LocalizeExpected) << "threads " << Threads;
    EXPECT_EQ(Frames[1].Body, LocalizeExpected) << "cache-hit body diverged";
    EXPECT_EQ(Frames[2].Body, JsonExpected) << "threads " << Threads;
    EXPECT_EQ(Frames[3].Body, MaxSatExpected) << "threads " << Threads;
    EXPECT_EQ(Frames[4].Body, SatExpected) << "threads " << Threads;

    // The stderr summary mirrors the counters.
    std::ifstream ErrIn(ErrFile);
    std::string Summary((std::istreambuf_iterator<char>(ErrIn)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(Summary.find("\"requests\":5"), std::string::npos) << Summary;
    EXPECT_NE(Summary.find("\"ok\":5"), std::string::npos) << Summary;
    EXPECT_NE(Summary.find("\"cache_hits\":1"), std::string::npos) << Summary;
    EXPECT_NE(Summary.find("\"cache_misses\":2"), std::string::npos)
        << Summary;
    std::remove(ErrFile.c_str());

    if (First.empty())
      First = Frames;
    else
      for (size_t I = 0; I < 5; ++I)
        EXPECT_EQ(Frames[I].Body, First[I].Body)
            << "thread-count nondeterminism at width " << Threads
            << " for id " << Frames[I].Id;
  }

  std::remove(TcasFile.c_str());
  std::remove(ArrayFile.c_str());
  std::remove(CnfFile.c_str());
  std::remove(BatchFile.c_str());
}

// --- cache keying -------------------------------------------------------------

TEST(ServeLib, CacheMissesCountDistinctProgramOptionKeys) {
  // Same source at different encode-relevant options is a different key;
  // repeating an exact key is a hit -- including spelling out a default
  // explicitly (keys are by value, not by field presence). 5 requests,
  // 3 keys: default, bitwidth 8, unwind 4.
  std::string Req = "{\"cmd\":\"localize\",\"source\":\"" +
                    jsonEscape(ArrayProgram) + "\"";
  std::string Batch = Req + "}\n" + Req + "}\n" + Req + ",\"bitwidth\":8}\n" +
                      Req + ",\"unwind\":4}\n" + Req + ",\"bitwidth\":16}\n";
  LibRun R = runServe(Batch, /*Threads=*/2);
  EXPECT_EQ(R.Summary.Requests, 5u);
  EXPECT_EQ(R.Summary.Ok, 5u);
  EXPECT_EQ(R.Summary.CacheMisses, 3u) << R.ErrLine;
  EXPECT_EQ(R.Summary.CacheHits, 2u) << R.ErrLine;
  EXPECT_EQ(R.Summary.ExitCode, 0);
  // Same key => same cached formula => identical bodies. bitwidth:16 is
  // the documented default, so the last request shares the first's key.
  ASSERT_EQ(R.Frames.size(), 5u);
  EXPECT_EQ(R.Frames[0].Body, R.Frames[1].Body);
  EXPECT_EQ(R.Frames[0].Body, R.Frames[4].Body);
}

// --- failure isolation --------------------------------------------------------

TEST(ServeLib, BudgetExhaustionIsIncompleteAndDoesNotPoisonThePool) {
  // b pays a one-conflict budget and must come back INCOMPLETE (exit 2);
  // a and c run the same query unbudgeted and must agree byte for byte,
  // proving the exhausted session left no residue in cache or pool.
  std::string Batch = "{\"id\":\"a\"," + tcasV2RequestFields() + "}\n" +
                      "{\"id\":\"b\"," + tcasV2RequestFields() +
                      ",\"max_conflicts\":1}\n" + "{\"id\":\"c\"," +
                      tcasV2RequestFields() + "}\n";
  LibRun R = runServe(Batch, /*Threads=*/2);
  ASSERT_EQ(R.Frames.size(), 3u);
  EXPECT_EQ(R.Frames[0].Status, "ok");
  EXPECT_EQ(R.Frames[0].Exit, 0);
  EXPECT_EQ(R.Frames[1].Status, "incomplete");
  EXPECT_EQ(R.Frames[1].Exit, 2);
  EXPECT_NE(R.Frames[1].Body.find("INCOMPLETE"), std::string::npos)
      << R.Frames[1].Body;
  EXPECT_EQ(R.Frames[2].Status, "ok");
  EXPECT_EQ(R.Frames[2].Body, R.Frames[0].Body);
  // One program, one encode: the budgeted query shares the cached formula.
  EXPECT_EQ(R.Summary.CacheMisses, 1u);
  EXPECT_EQ(R.Summary.CacheHits, 2u);
  EXPECT_EQ(R.Summary.Incomplete, 1u);
  EXPECT_EQ(R.Summary.ExitCode, 2);
}

TEST(ServeLib, MalformedRequestsAreRejectedWithoutKillingTheDaemon) {
  std::string Valid = "{\"id\":\"good\",\"cmd\":\"sat\",\"cnf\":\"" +
                      jsonEscape("p cnf 1 1\n1 0\n") + "\"}";
  std::string Batch =
      // Not JSON at all.
      "this is not json\n"
      // Valid JSON, unknown command.
      "{\"id\":\"e1\",\"cmd\":\"bogus\"}\n"
      // Unknown field for the command.
      "{\"id\":\"e2\",\"cmd\":\"sat\",\"golden\":3}\n"
      // Missing program source.
      "{\"id\":\"e3\",\"cmd\":\"localize\"}\n"
      // Conflicting program sources.
      "{\"id\":\"e4\",\"cmd\":\"localize\",\"tcas\":1,\"source\":\"x\"}\n"
      // Uncompilable program: reaches a worker, still isolated.
      "{\"id\":\"e5\",\"cmd\":\"localize\",\"source\":\"int main( {\"}\n" +
      Valid + "\n";
  LibRun R = runServe(Batch, /*Threads=*/1);
  ASSERT_EQ(R.Frames.size(), 7u);
  for (size_t I = 0; I < 6; ++I) {
    EXPECT_EQ(R.Frames[I].Status, "error") << "frame " << I;
    EXPECT_EQ(R.Frames[I].Exit, 1) << "frame " << I;
    EXPECT_FALSE(R.Frames[I].ErrorField.empty()) << "frame " << I;
    EXPECT_TRUE(R.Frames[I].Body.empty()) << "frame " << I;
  }
  EXPECT_EQ(R.Frames[0].Cmd, "unknown");
  EXPECT_NE(R.Frames[0].ErrorField.find("bad JSON"), std::string::npos);
  EXPECT_EQ(R.Frames[2].Id, "e2");
  EXPECT_NE(R.Frames[2].ErrorField.find("unknown field"), std::string::npos);
  EXPECT_NE(R.Frames[5].ErrorField.find("does not compile"),
            std::string::npos);
  // The daemon survived all six and answered the valid request.
  EXPECT_EQ(R.Frames[6].Id, "good");
  EXPECT_EQ(R.Frames[6].Status, "ok");
  EXPECT_EQ(R.Frames[6].Body, "s SATISFIABLE\nv 1 0\n");
  EXPECT_EQ(R.Summary.Errors, 6u);
  EXPECT_EQ(R.Summary.Ok, 1u);
  EXPECT_EQ(R.Summary.ExitCode, 1);
}

// --- protocol details ---------------------------------------------------------

TEST(ServeLib, FramesCarryTheDocumentedFieldsInRequestOrder) {
  // Exercises the remaining documented request fields (entry, weighted,
  // engine, model, timeout, max_memory_mb, wcnf inline) and checks every
  // trailer key on every response, with responses in request order at a
  // width above one.
  std::string EntryProgram = "int check(int x) {\n"
                             "  int y = x + 1;\n"
                             "  assert(y != 4);\n"
                             "  return y;\n"
                             "}\n";
  std::string NoBugProgram = "int main(int x) {\n"
                             "  assert(x >= 0 || x < 0);\n"
                             "  return x;\n"
                             "}\n";
  std::string Wcnf = "p wcnf 2 3 10\n10 1 0\n1 2 0\n2 -2 0\n";
  std::string Batch =
      "{\"id\":\"r0\",\"cmd\":\"localize\",\"source\":\"" +
      jsonEscape(EntryProgram) +
      "\",\"entry\":\"check\",\"input\":\"3\",\"weighted\":true,"
      "\"timeout\":600,\"max_memory_mb\":2048}\n"
      "{\"id\":\"r1\",\"cmd\":\"localize\",\"source\":\"" +
      jsonEscape(NoBugProgram) + "\"}\n"
      "{\"id\":\"r2\",\"cmd\":\"maxsat\",\"wcnf\":\"" + jsonEscape(Wcnf) +
      "\",\"engine\":\"linear\",\"model\":false}\n"
      "{\"id\":\"r3\",\"cmd\":\"maxsat\",\"wcnf\":\"" + jsonEscape(Wcnf) +
      "\",\"engine\":\"fumalik\"}\n";
  LibRun R = runServe(Batch, /*Threads=*/4);
  ASSERT_EQ(R.Frames.size(), 4u);

  EXPECT_EQ(R.Frames[0].Id, "r0");
  EXPECT_EQ(R.Frames[0].Status, "ok");
  EXPECT_NE(R.Frames[0].Body.find("failing input: 3"), std::string::npos)
      << R.Frames[0].Body;

  // No counterexample within bounds: still ok, explanatory body.
  EXPECT_EQ(R.Frames[1].Id, "r1");
  EXPECT_EQ(R.Frames[1].Status, "ok");
  EXPECT_EQ(R.Frames[1].Exit, 0);
  EXPECT_NE(R.Frames[1].Body.find("no spec violation"), std::string::npos)
      << R.Frames[1].Body;

  // model:false suppresses the v-line; both engines agree on the optimum
  // (unit weight-2 soft clause -2 falsified keeps weight-1 soft 2 true,
  // or vice versa: optimum cost 1 either way).
  EXPECT_EQ(R.Frames[2].Id, "r2");
  EXPECT_EQ(R.Frames[2].Body, "o 1\ns OPTIMUM FOUND\n");
  EXPECT_EQ(R.Frames[3].Id, "r3");
  EXPECT_NE(R.Frames[3].Body.find("s OPTIMUM FOUND\n"), std::string::npos);
  EXPECT_NE(R.Frames[3].Body.find("v "), std::string::npos);

  const std::vector<std::string> Keys = {
      "id",           "elapsed_ms",      "sat_calls",
      "conflicts",    "decisions",       "propagations",
      "restarts",     "vars_eliminated", "clauses_subsumed",
      "lits_self_subsumed", "reconstruction_bytes"};
  for (const Frame &F : R.Frames)
    EXPECT_EQ(F.TrailerKeys, Keys) << "trailer keys for id " << F.Id;
}

TEST(ServeCli, BatchFileMustExistAndThreadsMustBeSane) {
  int Exit = 0;
  runCommand(Cli + " serve --batch /nonexistent/batch.jsonl 2>/dev/null",
             Exit);
  EXPECT_EQ(exitStatus(Exit), 1);
  runCommand(Cli + " serve --threads 0 --batch /dev/null 2>/dev/null", Exit);
  EXPECT_EQ(exitStatus(Exit), 1);
  runCommand(Cli + " serve --threads 65 --batch /dev/null 2>/dev/null", Exit);
  EXPECT_EQ(exitStatus(Exit), 1);
  // An empty batch is a clean, zero-request run.
  std::string Out =
      runCommand(Cli + " serve --batch /dev/null 2>/dev/null", Exit);
  EXPECT_EQ(exitStatus(Exit), 0);
  EXPECT_TRUE(Out.empty());
}

// --- the ordered emitter ------------------------------------------------------

TEST(OrderedEmitterUnit, FlushesContiguousRunAsSoonAsNextArrives) {
  std::ostringstream Out;
  OrderedEmitter E(Out);
  E.emit(1, "B");
  EXPECT_EQ(E.written(), 0u); // stalled behind the missing index 0
  EXPECT_EQ(E.pending(), 1u);
  EXPECT_TRUE(Out.str().empty());
  E.emit(0, "A"); // completes the run: both flush in one go, in order
  EXPECT_EQ(Out.str(), "AB");
  EXPECT_EQ(E.written(), 2u);
  EXPECT_EQ(E.pending(), 0u);
}

TEST(OrderedEmitterUnit, OutOfOrderCompletionWithErrorsInterleaved) {
  // The serve reality: successes, errors, and incompletes complete in
  // scheduler order, not request order; the stream must still read
  // 0,1,2,3,4 with every payload whole.
  std::ostringstream Out;
  OrderedEmitter E(Out);
  E.emit(3, "[3:error]");
  E.emit(1, "[1:incomplete]");
  E.emit(4, "[4:ok]");
  EXPECT_TRUE(Out.str().empty());
  E.emit(0, "[0:ok]"); // flushes 0 and 1
  EXPECT_EQ(Out.str(), "[0:ok][1:incomplete]");
  E.emit(2, "[2:ok]"); // flushes the rest
  EXPECT_EQ(Out.str(), "[0:ok][1:incomplete][2:ok][3:error][4:ok]");
  EXPECT_EQ(E.written(), 5u);
}

TEST(OrderedEmitterUnit, EmitIsIdempotentPerIndexAndFirstPayloadWins) {
  std::ostringstream Out;
  OrderedEmitter E(Out);
  E.emit(1, "original");
  E.emit(1, "retry"); // a crashed worker's retry: dropped while pending
  E.emit(0, "head");
  EXPECT_EQ(Out.str(), "headoriginal");
  E.emit(0, "late"); // and dropped after writing, too
  E.emit(1, "later");
  EXPECT_EQ(Out.str(), "headoriginal");
  EXPECT_EQ(E.written(), 2u);
}

TEST(OrderedEmitterUnit, WriterDeathLeavesNoPartialFrameAndPayloadSurvives) {
  // A worker dying inside emit() -- after recording, before writing --
  // must leave zero bytes on the stream (no partial frame), and the
  // recorded payload must still come out whole, written exactly once by
  // whoever flushes next.
  std::ostringstream Out;
  OrderedEmitter E(Out);
  {
    faultinject::ScopedFault Fault("emitterflush:badalloc@1");
    EXPECT_THROW(E.emit(0, "whole frame\n"), std::bad_alloc);
  }
  EXPECT_TRUE(Out.str().empty()); // nothing partial escaped
  EXPECT_EQ(E.pending(), 1u);     // but the payload is safely recorded
  E.emit(0, "the retry's recomputation"); // first payload wins
  EXPECT_EQ(Out.str(), "whole frame\n");
  EXPECT_EQ(E.written(), 1u);
}

// --- self-healing under injected faults ---------------------------------------

namespace {

/// Soft pigeonhole WCNF text: every clause soft at weight 1, empty hard
/// part. The first Fu-Malik core needs the full PHP refutation -- far
/// beyond any test budget for Holes >= 9 -- but the anytime upper bound
/// and witness are instant, so budget/watchdog/drain interruptions all
/// come back `incomplete` fast.
std::string softPigeonWcnf(int Holes) {
  int Pigeons = Holes + 1;
  auto V = [&](int P, int H) { return P * Holes + H + 1; };
  std::vector<std::string> Lines;
  for (int P = 0; P < Pigeons; ++P) {
    std::string L = "1";
    for (int H = 0; H < Holes; ++H)
      L += " " + std::to_string(V(P, H));
    Lines.push_back(L + " 0");
  }
  for (int H = 0; H < Holes; ++H)
    for (int P = 0; P < Pigeons; ++P)
      for (int Q = P + 1; Q < Pigeons; ++Q)
        Lines.push_back("1 -" + std::to_string(V(P, H)) + " -" +
                        std::to_string(V(Q, H)) + " 0");
  std::string Out = "p wcnf " + std::to_string(Pigeons * Holes) + " " +
                    std::to_string(Lines.size()) + " 1000\n";
  for (const std::string &L : Lines)
    Out += L + "\n";
  return Out;
}

/// Compares the deterministic frame fields (id, status, exit, code, body)
/// of two runs; cache hit/miss attribution is scheduling-dependent at
/// widths above one and deliberately excluded.
void expectSameFrames(const std::vector<Frame> &Got,
                      const std::vector<Frame> &Want) {
  ASSERT_EQ(Got.size(), Want.size());
  for (size_t I = 0; I < Want.size(); ++I) {
    EXPECT_EQ(Got[I].Id, Want[I].Id) << "frame " << I;
    EXPECT_EQ(Got[I].Status, Want[I].Status) << "frame " << I;
    EXPECT_EQ(Got[I].Exit, Want[I].Exit) << "frame " << I;
    EXPECT_EQ(Got[I].Code, Want[I].Code) << "frame " << I;
    EXPECT_EQ(Got[I].Body, Want[I].Body) << "frame " << I;
  }
}

} // namespace

TEST(ServeSelfHealing, CacheFillCrashIsRetriedAndTheEntryIsNotPoisoned) {
  // The first fill of the cache entry throws, killing the worker inside
  // lookup(). The entry must not be poisoned: the respawned worker's
  // retry re-runs the build under the same key and both requests succeed,
  // byte-identical to the fault-free run.
  std::string Req = "{\"cmd\":\"localize\",\"source\":\"" +
                    jsonEscape(ArrayProgram) + "\"}";
  std::string Batch = Req + "\n" + Req + "\n";
  LibRun Clean = runServe(Batch, /*Threads=*/1);
  ASSERT_EQ(Clean.Summary.Ok, 2u);

  LibRun Faulty;
  {
    faultinject::ScopedFault Fault("cachefill:badalloc@1");
    Faulty = runServe(Batch, /*Threads=*/1);
  }
  EXPECT_EQ(Faulty.Summary.Ok, 2u);
  EXPECT_EQ(Faulty.Summary.Errors, 0u);
  EXPECT_EQ(Faulty.Summary.Respawns, 1u) << Faulty.ErrLine;
  EXPECT_EQ(Faulty.Summary.Retries, 1u) << Faulty.ErrLine;
  EXPECT_EQ(Faulty.Summary.ExitCode, 0);
  expectSameFrames(Faulty.Frames, Clean.Frames);
}

TEST(ServeSelfHealing, PreprocessCrashHealsAndTheBaseSessionIsNotPoisoned) {
  // The injected OOM escapes from the cached base session's preprocess
  // inside cloneSession(); the half-built base must be dropped (not left
  // mid-pass for the next clone), the worker respawned, and the retry
  // must rebuild and answer identically to the fault-free run.
  std::string Req = "{\"cmd\":\"localize\",\"source\":\"" +
                    jsonEscape(ArrayProgram) + "\"}";
  std::string Batch = Req + "\n" + Req + "\n";
  LibRun Clean = runServe(Batch, /*Threads=*/1);
  ASSERT_EQ(Clean.Summary.Ok, 2u);

  LibRun Faulty;
  {
    faultinject::ScopedFault Fault("simplify:badalloc@1");
    Faulty = runServe(Batch, /*Threads=*/1);
  }
  EXPECT_EQ(Faulty.Summary.Ok, 2u);
  EXPECT_EQ(Faulty.Summary.Respawns, 1u) << Faulty.ErrLine;
  EXPECT_EQ(Faulty.Summary.Retries, 1u) << Faulty.ErrLine;
  EXPECT_EQ(Faulty.Summary.ExitCode, 0);
  expectSameFrames(Faulty.Frames, Clean.Frames);
}

TEST(ServeSelfHealing, RetriesExhaustedYieldsWorkerCrashedErrorResponse) {
  // Every cache fill crashes (period 1): the initial attempt and the
  // single allowed retry both die, so the request must come back as a
  // structured worker-crashed error -- not vanish, not hang -- and the
  // pool must end the run at full strength.
  std::string Batch = "{\"id\":\"doomed\",\"cmd\":\"localize\",\"source\":\"" +
                      jsonEscape(ArrayProgram) + "\"}\n";
  ServeOptions SO;
  SO.Threads = 1;
  SO.MaxRetries = 1;
  SO.RetryBackoffMs = 0.1;
  LibRun R;
  {
    faultinject::ScopedFault Fault("cachefill:badalloc@1/1");
    R = runServeOpts(Batch, SO);
  }
  ASSERT_EQ(R.Frames.size(), 1u);
  EXPECT_EQ(R.Frames[0].Id, "doomed");
  EXPECT_EQ(R.Frames[0].Status, "error");
  EXPECT_EQ(R.Frames[0].Code, "worker-crashed");
  EXPECT_NE(R.Frames[0].ErrorField.find("worker crashed on every attempt"),
            std::string::npos)
      << R.Frames[0].ErrorField;
  EXPECT_EQ(R.Summary.Errors, 1u);
  EXPECT_EQ(R.Summary.Retries, 1u);
  EXPECT_EQ(R.Summary.Respawns, 2u); // both attempts died
  EXPECT_EQ(R.Summary.ExitCode, 1);
}

TEST(ServeSelfHealing, ErrorCodesClassifyOutcomesInTheHeader) {
  std::string Batch =
      "{\"id\":\"bad\",\"cmd\":\"sat\"}\n"
      "{\"id\":\"nofile\",\"cmd\":\"sat\",\"file\":\"/nonexistent.cnf\"}\n"
      "{\"id\":\"ok\",\"cmd\":\"sat\",\"cnf\":\"p cnf 1 1\\n1 0\\n\"}\n"
      "{\"id\":\"slow\",\"cmd\":\"maxsat\",\"wcnf\":\"" +
      jsonEscape(softPigeonWcnf(9)) + "\",\"max_conflicts\":1}\n";
  LibRun R = runServe(Batch, /*Threads=*/1);
  ASSERT_EQ(R.Frames.size(), 4u);
  EXPECT_EQ(R.Frames[0].Code, "bad-request");
  EXPECT_EQ(R.Frames[1].Code, "file-unreadable");
  EXPECT_EQ(R.Frames[2].Code, "ok");
  EXPECT_EQ(R.Frames[3].Status, "incomplete");
  EXPECT_EQ(R.Frames[3].Code, "budget-exhausted");
}

TEST(ServeSelfHealing, WatchdogEscalatesOverdueQueries) {
  // The soft-PHP(9) Fu-Malik core is far beyond any test-scale search, so
  // without the watchdog this request would run (nearly) forever. The
  // watchdog must interrupt it, the response must be an honest
  // `incomplete` with the anytime bound, and the next request must be
  // unaffected.
  std::string Batch = "{\"id\":\"stuck\",\"cmd\":\"maxsat\",\"wcnf\":\"" +
                      jsonEscape(softPigeonWcnf(9)) +
                      "\"}\n"
                      "{\"id\":\"after\",\"cmd\":\"sat\",\"cnf\":\"p cnf 1 1"
                      "\\n1 0\\n\"}\n";
  ServeOptions SO;
  SO.Threads = 1;
  SO.WatchdogSeconds = 0.25;
  LibRun R = runServeOpts(Batch, SO);
  ASSERT_EQ(R.Frames.size(), 2u);
  EXPECT_EQ(R.Frames[0].Id, "stuck");
  EXPECT_EQ(R.Frames[0].Status, "incomplete");
  EXPECT_EQ(R.Frames[0].Exit, 2);
  EXPECT_NE(R.Frames[0].Body.find("s UNKNOWN"), std::string::npos)
      << R.Frames[0].Body;
  EXPECT_EQ(R.Frames[1].Id, "after");
  EXPECT_EQ(R.Frames[1].Status, "ok");
  EXPECT_EQ(R.Summary.Incomplete, 1u);
  EXPECT_EQ(R.Summary.ExitCode, 2);
}

namespace {

/// An istream buffer that serves a fixed prefix, then *blocks* on
/// underflow until release() -- a stand-in for a daemon's idle stdin, so
/// drain tests can interrupt a server that is mid-batch rather than one
/// that already saw EOF.
class BlockingStringBuf : public std::streambuf {
public:
  explicit BlockingStringBuf(std::string T) : Text(std::move(T)) {
    setg(Text.data(), Text.data(), Text.data() + Text.size());
  }
  void release() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      Released = true;
    }
    Cv.notify_all();
  }

protected:
  int_type underflow() override {
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [&] { return Released; });
    return traits_type::eof();
  }

private:
  std::string Text;
  std::mutex Mu;
  std::condition_variable Cv;
  bool Released = false;
};

} // namespace

TEST(ServeSelfHealing, DrainAnswersEveryAcceptedRequestExactlyOnce) {
  // Three unboundedly slow requests, width 1: one is in flight when the
  // drain arrives, the others are still queued (the pool's own-deque pop
  // order is newest-first, so which one is in flight is a scheduling
  // accident -- the assertions below are order-agnostic). The drain must
  // interrupt the in-flight solve (-> incomplete), answer the queued ones
  // with `cancelled`, and produce exactly one well-formed frame per id.
  std::string Slow = jsonEscape(softPigeonWcnf(9));
  std::string Batch =
      "{\"id\":\"r0\",\"cmd\":\"maxsat\",\"wcnf\":\"" + Slow + "\"}\n" +
      "{\"id\":\"r1\",\"cmd\":\"maxsat\",\"wcnf\":\"" + Slow + "\"}\n" +
      "{\"id\":\"r2\",\"cmd\":\"maxsat\",\"wcnf\":\"" + Slow + "\"}\n";
  BlockingStringBuf Buf(Batch);
  std::istream In(&Buf);
  std::ostringstream Out, Err;
  ServeOptions SO;
  SO.Threads = 1;
  LocalizeServer Server(SO);
  ServeSummary Summary;
  std::thread Runner([&] { Summary = Server.run(In, Out, Err); });
  // Let the slow solve get going, then drain -- exactly what the CLI's
  // SIGTERM handler does -- and unblock the (daemon-idle) input stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  LocalizeServer::requestDrain();
  Buf.release();
  Runner.join();

  std::vector<Frame> Frames = parseFrames(Out.str());
  ASSERT_EQ(Frames.size(), 3u);
  size_t Incomplete = 0, Cancelled = 0;
  for (size_t I = 0; I < 3; ++I) {
    const Frame &F = Frames[I];
    EXPECT_EQ(F.Id, "r" + std::to_string(I)); // response order == intake order
    EXPECT_EQ(F.Exit, 2) << "id " << F.Id;
    if (F.Status == "incomplete") {
      ++Incomplete; // the interrupted in-flight solve: honest anytime answer
      EXPECT_NE(F.Body.find("s UNKNOWN"), std::string::npos) << F.Body;
    } else {
      ++Cancelled;
      EXPECT_EQ(F.Status, "cancelled") << "id " << F.Id;
      EXPECT_EQ(F.Code, "cancelled") << "id " << F.Id;
      EXPECT_TRUE(F.Body.empty()) << "id " << F.Id;
    }
  }
  EXPECT_EQ(Incomplete, 1u);
  EXPECT_EQ(Cancelled, 2u);
  EXPECT_TRUE(Summary.Drained);
  EXPECT_EQ(Summary.Cancelled, 2u);
  EXPECT_EQ(Summary.Incomplete, 1u);
  EXPECT_EQ(Summary.ExitCode, 2);
}

// --- the checked-in smoke batch -----------------------------------------------

TEST(ServeCli, CheckedInSmokeBatchRunsClean) {
  // bench/serve/tcas_smoke.jsonl is what CI's serve-smoke job replays;
  // keep it green from the test suite too so a stale batch file cannot
  // pass review. Location-independent: TCAS programs are baked in.
  std::string Batch = Instances + "/../serve/tcas_smoke.jsonl";
  int Exit = 0;
  std::string Out = runCommand(
      Cli + " serve --batch " + Batch + " --threads 2 2>/dev/null", Exit);
  EXPECT_EQ(exitStatus(Exit), 0);
  std::vector<Frame> Frames = parseFrames(Out);
  ASSERT_FALSE(Frames.empty());
  for (const Frame &F : Frames) {
    EXPECT_EQ(F.Status, "ok") << "id " << F.Id << ": " << F.ErrorField;
    EXPECT_EQ(F.Exit, 0);
  }
}

// --- repair requests ----------------------------------------------------------

namespace {

const char *OffByOneProgram = "int main(int x) {\n"
                              "  int y;\n"
                              "  y = 0;\n"
                              "  if (x < 10) {\n"
                              "    y = 1;\n"
                              "  }\n"
                              "  return y;\n"
                              "}\n";

} // namespace

TEST(ServeRepair, BodyMatchesOneShotCliAndCachesTheProgram) {
  // A repair response body is the `bugassist repair` stdout byte for
  // byte, and the compiled program is shared with the localize cache: a
  // repeated request must hit.
  std::string SrcFile = writeTempFile(OffByOneProgram);
  int Exit = 0;
  std::string TextExpected = runCommand(
      Cli + " repair " + SrcFile + " --input \"10\" --golden 1", Exit);
  ASSERT_EQ(exitStatus(Exit), 0);
  ASSERT_NE(TextExpected.find("repair: line 4: '<' -> '<='"),
            std::string::npos)
      << TextExpected;
  std::string JsonExpected = runCommand(
      Cli + " repair " + SrcFile + " --input \"10\" --golden 1 --json",
      Exit);
  ASSERT_EQ(exitStatus(Exit), 0);

  std::string Fields = "\"cmd\":\"repair\",\"source\":\"" +
                       jsonEscape(OffByOneProgram) +
                       "\",\"inputs\":[\"10\"],\"goldens\":[1]";
  std::string Batch = "{\"id\":\"r1\"," + Fields + "}\n" +
                      "{\"id\":\"r2\"," + Fields + "}\n" +
                      "{\"id\":\"rj\"," + Fields + ",\"json\":true}\n";
  LibRun R = runServe(Batch, /*Threads=*/1);
  ASSERT_EQ(R.Frames.size(), 3u);
  for (const Frame &F : R.Frames) {
    EXPECT_EQ(F.Cmd, "repair");
    EXPECT_EQ(F.Status, "ok");
    EXPECT_EQ(F.Exit, 0);
    EXPECT_EQ(F.Code, "ok");
  }
  // One program, three requests: exactly one build. Which request pays
  // the miss is scheduling-dependent (the pool pops newest-first), so
  // only the totals are asserted.
  int Misses = 0, Hits = 0;
  for (const Frame &F : R.Frames) {
    Misses += F.CacheField == "miss";
    Hits += F.CacheField == "hit";
  }
  EXPECT_EQ(Misses, 1);
  EXPECT_EQ(Hits, 2);
  EXPECT_EQ(R.Frames[0].Body, TextExpected);
  EXPECT_EQ(R.Frames[1].Body, TextExpected) << "cache-hit body diverged";
  EXPECT_EQ(R.Frames[2].Body, JsonExpected);
  std::remove(SrcFile.c_str());
}

TEST(ServeRepair, RequestValidationRejectsBadTestVectors) {
  // No inputs at all, and a goldens array of the wrong length: both are
  // request errors that must not kill the daemon or touch the cache.
  std::string Batch =
      "{\"id\":\"noin\",\"cmd\":\"repair\",\"source\":\"" +
      jsonEscape(OffByOneProgram) + "\"}\n" +
      "{\"id\":\"skew\",\"cmd\":\"repair\",\"source\":\"" +
      jsonEscape(OffByOneProgram) +
      "\",\"inputs\":[\"10\"],\"goldens\":[1,2]}\n" +
      "{\"id\":\"ok\",\"cmd\":\"repair\",\"source\":\"" +
      jsonEscape(OffByOneProgram) +
      "\",\"inputs\":[\"10\"],\"goldens\":[1]}\n";
  LibRun R = runServe(Batch, /*Threads=*/1);
  ASSERT_EQ(R.Frames.size(), 3u);
  EXPECT_EQ(R.Frames[0].Status, "error");
  EXPECT_NE(R.Frames[0].ErrorField.find("inputs"), std::string::npos)
      << R.Frames[0].ErrorField;
  EXPECT_EQ(R.Frames[1].Status, "error");
  EXPECT_NE(R.Frames[1].ErrorField.find("goldens"), std::string::npos)
      << R.Frames[1].ErrorField;
  EXPECT_EQ(R.Frames[2].Status, "ok");
  EXPECT_NE(R.Frames[2].Body.find("repair: line 4: '<' -> '<='"),
            std::string::npos)
      << R.Frames[2].Body;
}
