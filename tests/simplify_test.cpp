//===- simplify_test.cpp - inprocessing unit & differential tests ------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Covers the SatELite-style simplifier (sat/Simplifier.h): hand-checked
// bounded variable elimination and backward subsumption, model
// reconstruction round-trips (every model of the reduced formula extends
// to a model of the original), the frozen-variable contract (eliminating
// a frozen variable is a hard error, talking about an eliminated variable
// is a hard error, releaseVar unfreezes), a brute-force differential on
// random instances, and CLI differentials: every checked-in instance
// answers identically with and without --no-preprocess, and the TCAS
// localization report is byte-identical at --threads 1/2/4 both with and
// without preprocessing.
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"

#include "cnf/Cnf.h"
#include "support/Rng.h"

#include "CliTestUtils.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

using namespace bugassist;
using namespace bugassist::clitest;

namespace {

bool bruteForceSat(int NumVars, const std::vector<Clause> &Clauses) {
  for (uint64_t Mask = 0; Mask < (1ull << NumVars); ++Mask) {
    bool AllSat = true;
    for (const Clause &C : Clauses) {
      bool Sat = false;
      for (Lit L : C) {
        bool V = (Mask >> L.var()) & 1;
        if (V != L.negated()) {
          Sat = true;
          break;
        }
      }
      if (!Sat) {
        AllSat = false;
        break;
      }
    }
    if (AllSat)
      return true;
  }
  return false;
}

bool modelSatisfies(const Solver &S, const std::vector<Clause> &Clauses) {
  for (const Clause &C : Clauses) {
    bool Sat = false;
    for (Lit L : C)
      if (S.modelValue(L) == LBool::True) {
        Sat = true;
        break;
      }
    if (!Sat)
      return false;
  }
  return true;
}

std::vector<Clause> randomInstance(Rng &R, int NumVars, int NumClauses,
                                   int ClauseLen) {
  std::vector<Clause> Cs;
  for (int I = 0; I < NumClauses; ++I) {
    Clause C;
    std::set<Var> Used;
    while (static_cast<int>(C.size()) < ClauseLen) {
      Var V = static_cast<Var>(R.below(NumVars));
      if (!Used.insert(V).second)
        continue;
      C.push_back(mkLit(V, R.chance(1, 2)));
    }
    Cs.push_back(std::move(C));
  }
  return Cs;
}

} // namespace

// --- hand-checked transformations --------------------------------------------

// x has one positive occurrence (a \/ x) and one negative (~x \/ b): the
// single resolvent is (a \/ b), the clause count does not grow, and x is
// gone. Any model of the residue must extend to one of the original.
TEST(Simplify, HandCheckedEliminationProducesTheResolvent) {
  Solver S;
  Var A = S.newVar(), B = S.newVar(), X = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A), mkLit(X)}));
  ASSERT_TRUE(S.addClause({~mkLit(X), mkLit(B)}));

  ASSERT_TRUE(S.eliminateVar(X));
  EXPECT_TRUE(S.isEliminated(X));
  EXPECT_EQ(S.stats().VarsEliminated, 1u);
  EXPECT_GT(S.stats().ReconstructBytes, 0u);

  // Push the residue off the trivial model: force ~a, so (a \/ b) demands
  // b, and the reconstruction must pick x = true to satisfy (a \/ x).
  ASSERT_TRUE(S.addClause({~mkLit(A)}));
  ASSERT_EQ(S.solve(), LBool::True);
  EXPECT_EQ(S.modelValue(B), LBool::True);
  EXPECT_TRUE(modelSatisfies(
      S, {{mkLit(A), mkLit(X)}, {~mkLit(X), mkLit(B)}, {~mkLit(A)}}))
      << "extendModel must restore the eliminated variable";
  EXPECT_EQ(S.modelValue(X), LBool::True);
}

// A pure-side variable (only positive occurrences) eliminates with zero
// resolvents; reconstruction alone must satisfy its clauses.
TEST(Simplify, PureLiteralEliminatesWithNoResolvents) {
  Solver S;
  Var A = S.newVar(), B = S.newVar(), X = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(X), mkLit(A)}));
  ASSERT_TRUE(S.addClause({mkLit(X), mkLit(B)}));
  ASSERT_TRUE(S.eliminateVar(X));
  ASSERT_TRUE(S.isEliminated(X));
  ASSERT_TRUE(S.addClause({~mkLit(A)}));
  ASSERT_TRUE(S.addClause({~mkLit(B)}));
  ASSERT_EQ(S.solve(), LBool::True);
  EXPECT_EQ(S.modelValue(X), LBool::True)
      << "only x = true satisfies the stored clauses under ~a, ~b";
}

TEST(Simplify, BackwardSubsumptionRemovesTheSuperset) {
  Solver::Options O;
  O.PreprocessMinClauses = 0; // tiny hand-built formula
  Solver S{O};
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A), mkLit(B)}));
  ASSERT_TRUE(S.addClause({mkLit(A), mkLit(B), mkLit(C)})); // subsumed
  ASSERT_TRUE(S.preprocess());
  EXPECT_GE(S.stats().ClausesSubsumed, 1u);
  EXPECT_EQ(S.solve(), LBool::True);
}

TEST(Simplify, SelfSubsumingResolutionStrengthens) {
  Solver::Options O;
  O.PreprocessMinClauses = 0; // tiny hand-built formula
  Solver S{O};
  Var A = S.newVar(), B = S.newVar(), C = S.newVar(), D = S.newVar();
  // (a \/ b) resolved with (~a \/ b \/ c \/ d) on a strengthens the long
  // clause to (b \/ c \/ d). The extra literal d keeps the pair from
  // colliding with the variable-elimination sweep's clause-count bound in
  // an order-dependent way; the strengthening itself is what we assert.
  ASSERT_TRUE(S.addClause({mkLit(A), mkLit(B)}));
  ASSERT_TRUE(S.addClause({~mkLit(A), mkLit(B), mkLit(C), mkLit(D)}));
  ASSERT_TRUE(S.preprocess());
  EXPECT_GE(S.stats().LitsSelfSubsumed, 1u);
  EXPECT_EQ(S.solve(), LBool::True);
}

// --- model reconstruction ----------------------------------------------------

// Chains y0 -> y1 -> ... -> yN with the interior unconstrained from
// outside: preprocessing eliminates interior variables, and the extended
// model must still satisfy every original clause.
TEST(Simplify, ReconstructionRoundTripsOnAChain) {
  const int N = 50;
  Solver S;
  S.ensureVars(N + 1);
  std::vector<Clause> Original;
  Original.push_back({mkLit(0)});
  for (Var V = 0; V < N; ++V)
    Original.push_back({~mkLit(V), mkLit(V + 1)});
  for (const Clause &C : Original)
    ASSERT_TRUE(S.addClause(C));
  ASSERT_TRUE(S.preprocess());
  ASSERT_EQ(S.solve(), LBool::True);
  EXPECT_TRUE(modelSatisfies(S, Original));
}

TEST(Simplify, RandomDifferentialAgainstBruteForce) {
  // 80 random instances around the phase transition; preprocessing-on
  // answers must match brute force, and SAT models (after extendModel)
  // must satisfy the ORIGINAL clauses.
  for (uint64_t Seed = 1; Seed <= 80; ++Seed) {
    Rng R(Seed);
    int NumVars = 8 + static_cast<int>(R.below(6));
    auto Cs = randomInstance(R, NumVars, NumVars * 4, 3);
    Solver S;
    S.ensureVars(NumVars);
    bool Ok = true;
    for (const Clause &C : Cs)
      Ok = Ok && S.addClause(C);
    LBool Res = Ok ? S.solve() : LBool::False;
    bool Expected = bruteForceSat(NumVars, Cs);
    ASSERT_EQ(Res == LBool::True, Expected) << "seed " << Seed;
    if (Res == LBool::True) {
      ASSERT_TRUE(modelSatisfies(S, Cs)) << "seed " << Seed;
    }
  }
}

// Solver copies (the portfolio / serve clone path) must carry the
// reconstruction stack: a clone of a preprocessed solver extends models
// exactly like the original.
TEST(Simplify, CloneInheritsReconstructionStack) {
  Solver S;
  Var A = S.newVar(), B = S.newVar(), X = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A), mkLit(X)}));
  ASSERT_TRUE(S.addClause({~mkLit(X), mkLit(B)}));
  ASSERT_TRUE(S.eliminateVar(X));

  Solver Copy = S; // member-wise deep copy
  ASSERT_TRUE(Copy.addClause({~mkLit(A)}));
  ASSERT_EQ(Copy.solve(), LBool::True);
  EXPECT_TRUE(Copy.isEliminated(X));
  EXPECT_TRUE(modelSatisfies(
      Copy, {{mkLit(A), mkLit(X)}, {~mkLit(X), mkLit(B)}, {~mkLit(A)}}));
}

// --- the frozen-variable contract --------------------------------------------

TEST(SimplifyFrozen, EliminatingAFrozenVariableIsAHardError) {
  Solver S;
  Var A = S.newVar(), X = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A), mkLit(X)}));
  ASSERT_TRUE(S.addClause({~mkLit(X), ~mkLit(A)}));
  S.setFrozen(X, true);
  EXPECT_TRUE(S.isFrozen(X));
  EXPECT_THROW(S.eliminateVar(X), std::logic_error);
  EXPECT_FALSE(S.isEliminated(X));
}

TEST(SimplifyFrozen, PreprocessSkipsFrozenVariables) {
  Solver::Options O;
  O.PreprocessMinClauses = 0; // tiny hand-built formula
  Solver S{O};
  Var A = S.newVar(), B = S.newVar(), X = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A), mkLit(X)}));
  ASSERT_TRUE(S.addClause({~mkLit(X), mkLit(B)}));
  S.setFrozen(X, true);
  ASSERT_TRUE(S.preprocess());
  EXPECT_FALSE(S.isEliminated(X))
      << "a full pass must silently skip frozen variables, not throw";
  // The frozen variable is still legal to talk about afterwards. (A and B
  // were fair game for elimination, so pair X with a fresh variable.)
  EXPECT_EQ(S.solve({mkLit(X)}), LBool::True);
  Var C = S.newVar();
  EXPECT_TRUE(S.addClause({mkLit(X), mkLit(C)}));
}

TEST(SimplifyFrozen, MentioningAnEliminatedVariableIsAHardError) {
  Solver S;
  Var A = S.newVar(), B = S.newVar(), X = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A), mkLit(X)}));
  ASSERT_TRUE(S.addClause({~mkLit(X), mkLit(B)}));
  ASSERT_TRUE(S.eliminateVar(X));
  EXPECT_THROW(S.addClause({mkLit(X)}), std::logic_error);
  EXPECT_THROW((void)S.solve({mkLit(X)}), std::logic_error);
}

TEST(SimplifyFrozen, ReleaseVarUnfreezes) {
  Solver S;
  Var A = S.newVar();
  Var G = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A), ~mkLit(G)}));
  S.setFrozen(G, true);
  ASSERT_TRUE(S.isFrozen(G));
  // Retiring the guard (the Fu-Malik relaxation path) must lift the
  // freeze: the variable is root-fixed afterwards and fair game.
  ASSERT_TRUE(S.releaseVar(~mkLit(G)));
  EXPECT_FALSE(S.isFrozen(G));
  EXPECT_EQ(S.solve(), LBool::True);
}

// --- CLI differentials -------------------------------------------------------

namespace {

/// Top-level *.cnf / *.wcnf files under the checked-in instance dir.
std::vector<std::string> instanceFiles(const char *Suffix) {
  std::vector<std::string> Files;
  DIR *D = opendir(Instances.c_str());
  EXPECT_NE(D, nullptr);
  if (!D)
    return Files;
  size_t SufLen = std::strlen(Suffix);
  while (dirent *E = readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() > SufLen &&
        Name.compare(Name.size() - SufLen, SufLen, Suffix) == 0)
      Files.push_back(Instances + "/" + Name);
  }
  closedir(D);
  std::sort(Files.begin(), Files.end());
  EXPECT_FALSE(Files.empty());
  return Files;
}

/// The answer lines (s/o) of a CLI run; everything else (c comments,
/// models, stats) is timing- or reconstruction-dependent.
std::string answerLines(const std::string &Out) {
  std::string Answers;
  size_t Pos = 0;
  while (Pos < Out.size()) {
    size_t Nl = Out.find('\n', Pos);
    if (Nl == std::string::npos)
      Nl = Out.size();
    if (Out.compare(Pos, 2, "s ") == 0 || Out.compare(Pos, 2, "o ") == 0)
      Answers.append(Out, Pos, Nl - Pos + 1);
    Pos = Nl + 1;
  }
  return Answers;
}

} // namespace

TEST(SimplifyCliDifferential, EveryInstanceAnswersIdenticallyWithoutPreprocess) {
  for (const std::string &F : instanceFiles(".cnf")) {
    int E1 = 0, E2 = 0;
    std::string On = runCommand(Cli + " sat " + F + " --no-model", E1);
    std::string Off =
        runCommand(Cli + " sat " + F + " --no-model --no-preprocess", E2);
    EXPECT_EQ(exitStatus(E1), exitStatus(E2)) << F;
    EXPECT_EQ(answerLines(On), answerLines(Off)) << F;
  }
  for (const std::string &F : instanceFiles(".wcnf")) {
    int E1 = 0, E2 = 0;
    std::string On = runCommand(Cli + " maxsat " + F + " --no-model", E1);
    std::string Off =
        runCommand(Cli + " maxsat " + F + " --no-model --no-preprocess", E2);
    EXPECT_EQ(exitStatus(E1), exitStatus(E2)) << F;
    EXPECT_EQ(answerLines(On), answerLines(Off)) << F;
  }
}

TEST(SimplifyCliDifferential, TcasLocalizationIsByteIdenticalAcrossWidths) {
  // TCAS v2 with the same deterministic failing input the CI smoke uses.
  // One canonical report at every (threads, preprocessing) combination:
  // canonicalized optima make the diagnosis sequence independent of both
  // the portfolio width and the per-worker eliminations.
  int Exit = 0;
  std::string Source = runCommand(Cli + " dump-tcas 2", Exit);
  ASSERT_EQ(exitStatus(Exit), 0);
  std::string Path = "/tmp/bugassist_simplify_tcas2.ba";
  std::FILE *F = std::fopen(Path.c_str(), "w");
  ASSERT_NE(F, nullptr);
  std::fwrite(Source.data(), 1, Source.size(), F);
  std::fclose(F);

  std::string Base =
      Cli + " localize " + Path +
      " --input \"1052,1,0,6677,118,1329,0,790,890,0,2,1\" --golden 2"
      " --no-obligations --no-bounds --bitwidth 16 --hard-lines 69-84"
      " --max-diagnoses 24";
  std::string First;
  for (size_t Threads : {1u, 2u, 4u}) {
    for (const char *Extra : {"", " --no-preprocess"}) {
      std::string Out = runCommand(
          Base + " --threads " + std::to_string(Threads) + Extra, Exit);
      ASSERT_EQ(exitStatus(Exit), 0) << "threads " << Threads << Extra;
      ASSERT_NE(Out.find("diagnosis 1 "), std::string::npos);
      if (First.empty())
        First = Out;
      else
        EXPECT_EQ(Out, First)
            << "report diverged at --threads " << Threads << Extra;
    }
  }
  std::remove(Path.c_str());
}

// Preprocessing must actually fire on the checked-in pigeonhole instance --
// the --stats counters prove the sweep is not a no-op.
TEST(SimplifyCliDifferential, StatsReportEliminations) {
  int Exit = 0;
  std::string Out = runCommand(Cli + " maxsat " + Instances +
                                   "/php_soft8.wcnf --no-model --stats",
                               Exit);
  ASSERT_EQ(exitStatus(Exit), 0);
  size_t Pos = Out.find("vars_eliminated=");
  ASSERT_NE(Pos, std::string::npos) << Out;
  EXPECT_NE(Out.substr(Pos), "vars_eliminated=0 ")
      << "expected eliminations on the buffered pigeonhole:\n" << Out;
  uint64_t Count =
      std::strtoull(Out.c_str() + Pos + std::strlen("vars_eliminated="),
                    nullptr, 10);
  EXPECT_GT(Count, 0u) << Out;
}
