//===- serve_soak_test.cpp - serve self-healing soak tests ----------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// The tentpole acceptance proof for the self-healing serve pool: a batch
// of ~1000 mixed requests replayed at widths 1, 2, and 4 under an active
// fault-injection campaign (queue-pop, emitter-flush, cache-fill, and
// simplifier crash sites all armed) must lose no response, duplicate no
// response, emit in request order, and -- because retried attempts re-run
// byte-identical queries -- produce ok-bodies identical to the fault-free
// run. A second batch crashes every worker repeatedly and must still
// complete per the documented exit contract; a third injects parse faults
// at the intake boundary and must answer every line exactly once.
//
// Everything runs in-process through LocalizeServer::run, so the soak is
// cheap enough for every CI run (no subprocesses, no temp files). Frames
// are parsed only after the campaign is disarmed: parseJson is itself a
// fault site, and the harness must not crash on its own instrumentation.
//
//===----------------------------------------------------------------------===//

#include "serve/Json.h"
#include "serve/LocalizeServer.h"
#include "support/FaultInject.h"

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

using namespace bugassist;

namespace {

/// One parsed response frame: the fields the determinism contract covers.
/// Cache hit/miss attribution is scheduling-dependent at widths above one
/// and deliberately not captured.
struct Frame {
  std::string Id;
  std::string Status;
  int64_t Exit = -1;
  std::string Code;
  std::string Body;
};

/// Splits a serve output stream into frames, failing the test on any
/// framing violation. Callers must disarm any fault campaign first --
/// this goes through parseJson, which is itself an injection site.
std::vector<Frame> parseFrames(const std::string &Raw) {
  std::vector<Frame> Frames;
  size_t Pos = 0;
  while (Pos < Raw.size()) {
    size_t Nl = Raw.find('\n', Pos);
    EXPECT_NE(Nl, std::string::npos) << "unterminated header line";
    if (Nl == std::string::npos)
      break;
    std::string Error;
    auto Header = parseJson(Raw.substr(Pos, Nl - Pos), Error);
    EXPECT_TRUE(Header.has_value()) << "bad header: " << Error;
    if (!Header)
      break;
    Frame F;
    const JsonValue *Id = Header->find("id");
    const JsonValue *Status = Header->find("status");
    const JsonValue *Exit = Header->find("exit");
    const JsonValue *Bytes = Header->find("bytes");
    EXPECT_TRUE(Id && Status && Exit && Bytes) << "header missing a field";
    if (!(Id && Status && Exit && Bytes))
      break;
    F.Id = Id->Text;
    F.Status = Status->Text;
    std::optional<int64_t> ExitVal = Exit->asInt64();
    std::optional<int64_t> BodyLen = Bytes->asInt64();
    EXPECT_TRUE(ExitVal && BodyLen) << "non-numeric exit/bytes";
    if (!(ExitVal && BodyLen))
      break;
    F.Exit = *ExitVal;
    if (const JsonValue *C = Header->find("code"))
      F.Code = C->Text;
    Pos = Nl + 1;
    EXPECT_LE(Pos + static_cast<size_t>(*BodyLen), Raw.size())
        << "body shorter than advertised for id " << F.Id;
    if (Pos + static_cast<size_t>(*BodyLen) > Raw.size())
      break;
    F.Body = Raw.substr(Pos, static_cast<size_t>(*BodyLen));
    Pos += static_cast<size_t>(*BodyLen);
    Nl = Raw.find('\n', Pos);
    EXPECT_NE(Nl, std::string::npos) << "missing trailer for id " << F.Id;
    if (Nl == std::string::npos)
      break;
    std::string TrailerError;
    EXPECT_TRUE(parseJson(Raw.substr(Pos, Nl - Pos), TrailerError).has_value())
        << "bad trailer: " << TrailerError;
    Pos = Nl + 1;
    Frames.push_back(std::move(F));
  }
  Frames.shrink_to_fit();
  return Frames;
}

/// A run's raw output stream plus its summary. Parsing is the caller's
/// job, after disarming (see parseFrames).
struct SoakRun {
  ServeSummary Summary;
  std::string Raw;
  std::string ErrLine;
};

SoakRun runRaw(const std::string &Batch, const ServeOptions &SO) {
  SoakRun R;
  LocalizeServer Server(SO);
  std::istringstream In(Batch);
  std::ostringstream Out, Err;
  R.Summary = Server.run(In, Out, Err);
  R.Raw = Out.str();
  R.ErrLine = Err.str();
  return R;
}

const char *ArrayProgram = "int Array[3];\n"
                           "int main(int index) {\n"
                           "  if (index != 1)\n"
                           "    index = 2;\n"
                           "  else\n"
                           "    index = index + 2;\n"
                           "  int i = index;\n"
                           "  assert(i >= 0 && i < 3);\n"
                           "  return Array[i];\n"
                           "}\n";

/// A deterministic ~N-line workload: trivial SAT/UNSAT/MaxSAT requests
/// leavened with repeated localize queries (exercising the formula cache
/// from several workers) and well-formed-but-invalid requests (exercising
/// the inline-error path). Every line carries a positional id rI so runs
/// can be compared frame-by-frame.
std::string soakBatch(size_t N) {
  const std::string Sat =
      "\"cmd\":\"sat\",\"cnf\":\"" + jsonEscape("p cnf 2 2\n1 2 0\n-1 0\n") +
      "\"";
  const std::string Unsat =
      "\"cmd\":\"sat\",\"cnf\":\"" + jsonEscape("p cnf 1 2\n1 0\n-1 0\n") +
      "\"";
  const std::string MaxSat =
      "\"cmd\":\"maxsat\",\"wcnf\":\"" +
      jsonEscape("p wcnf 1 2 5\n1 1 0\n1 -1 0\n") + "\"";
  const std::string Localize =
      "\"cmd\":\"localize\",\"source\":\"" + jsonEscape(ArrayProgram) + "\"";
  const std::string Invalid = "\"cmd\":\"sat\""; // no cnf/file: bad-request
  std::string Batch;
  for (size_t I = 0; I < N; ++I) {
    const std::string *Fields;
    if (I % 40 == 13)
      Fields = &Localize;
    else if (I % 40 == 27)
      Fields = &Invalid;
    else
      Fields = (I % 3 == 0) ? &Sat : (I % 3 == 1) ? &Unsat : &MaxSat;
    Batch += "{\"id\":\"r" + std::to_string(I) + "\"," + *Fields + "}\n";
  }
  return Batch;
}

/// Frame-by-frame equality on the deterministic fields. \p Limit bounds
/// how many mismatches are reported before bailing, so a systemic
/// divergence does not produce a thousand-line failure log.
void expectSameFrames(const std::vector<Frame> &Got,
                      const std::vector<Frame> &Want) {
  ASSERT_EQ(Got.size(), Want.size());
  size_t Reported = 0;
  for (size_t I = 0; I < Want.size() && Reported < 10; ++I) {
    if (Got[I].Id == Want[I].Id && Got[I].Status == Want[I].Status &&
        Got[I].Exit == Want[I].Exit && Got[I].Code == Want[I].Code &&
        Got[I].Body == Want[I].Body)
      continue;
    ++Reported;
    EXPECT_EQ(Got[I].Id, Want[I].Id) << "frame " << I;
    EXPECT_EQ(Got[I].Status, Want[I].Status) << "frame " << I;
    EXPECT_EQ(Got[I].Exit, Want[I].Exit) << "frame " << I;
    EXPECT_EQ(Got[I].Code, Want[I].Code) << "frame " << I;
    EXPECT_EQ(Got[I].Body, Want[I].Body) << "frame " << I;
  }
}

} // namespace

TEST(ServeSoak, MixedBatchSurvivesTheFaultCampaignAtEveryWidth) {
  const size_t N = 1000;
  std::string Batch = soakBatch(N);

  // The fault-free reference run, width 1: the ground truth every
  // campaign run must reproduce byte-for-byte.
  ServeOptions Ref;
  Ref.Threads = 1;
  SoakRun Clean = runRaw(Batch, Ref);
  std::vector<Frame> Want = parseFrames(Clean.Raw);
  ASSERT_EQ(Want.size(), N);
  ASSERT_EQ(Clean.Summary.Requests, N);
  ASSERT_EQ(Clean.Summary.Errors, N / 40); // the invalid lines, nothing else

  // The campaign arms every crash site in the serve path: workers die
  // before dequeue (queue-pop), after computing but before writing
  // (emitter-flush), inside the cache's once-fill, and mid-preprocess.
  // All are badalloc (kill-the-worker) faults, so with the default two
  // retries every request must still heal to its reference answer.
  const char *Campaign = "queuepop:badalloc@5/7;"
                         "emitterflush:badalloc@13/29;"
                         "cachefill:badalloc@1/2;"
                         "simplify:badalloc@2/400";
  for (size_t Width : {1u, 2u, 4u}) {
    SoakRun Faulty;
    {
      faultinject::ScopedFault Fault(Campaign);
      ServeOptions SO;
      SO.Threads = Width;
      SO.RetryBackoffMs = 0.1; // soak fast; policy is pinned elsewhere
      Faulty = runRaw(Batch, SO);
    }
    SCOPED_TRACE("width " + std::to_string(Width) + ": " + Faulty.ErrLine);
    std::vector<Frame> Got = parseFrames(Faulty.Raw);
    expectSameFrames(Got, Want);
    EXPECT_EQ(Faulty.Summary.Requests, N);
    EXPECT_EQ(Faulty.Summary.Ok, Clean.Summary.Ok);
    EXPECT_EQ(Faulty.Summary.Errors, Clean.Summary.Errors);
    EXPECT_EQ(Faulty.Summary.Incomplete, 0u);
    EXPECT_EQ(Faulty.Summary.ExitCode, Clean.Summary.ExitCode);
    // The campaign actually bit: this is a soak, not a smoke.
    EXPECT_GT(Faulty.Summary.Respawns, 10u);
  }
}

TEST(ServeSoak, EveryWorkerCrashingRepeatedlyStillCompletesTheBatch) {
  // Every second queue-pop kills its worker -- across the whole pool,
  // for the whole batch. Pops fire *before* dequeue, so no request is
  // lost with its worker and no retry budget is consumed: the batch must
  // complete clean (exit 0), answered in order, identical to the
  // fault-free run, with the monitor respawning workers throughout.
  const size_t N = 60;
  std::string Batch;
  for (size_t I = 0; I < N; ++I)
    Batch += "{\"id\":\"r" + std::to_string(I) +
             "\",\"cmd\":\"sat\",\"cnf\":\"" +
             jsonEscape("p cnf 2 2\n1 2 0\n-1 0\n") + "\"}\n";

  ServeOptions Ref;
  Ref.Threads = 1;
  std::vector<Frame> Want = parseFrames(runRaw(Batch, Ref).Raw);
  ASSERT_EQ(Want.size(), N);

  SoakRun Faulty;
  {
    faultinject::ScopedFault Fault("queuepop:badalloc@1/2");
    ServeOptions SO;
    SO.Threads = 2;
    Faulty = runRaw(Batch, SO);
  }
  expectSameFrames(parseFrames(Faulty.Raw), Want);
  EXPECT_EQ(Faulty.Summary.Ok, N);
  EXPECT_EQ(Faulty.Summary.Errors, 0u);
  EXPECT_EQ(Faulty.Summary.ExitCode, 0);
  EXPECT_GE(Faulty.Summary.Respawns, 4u) << Faulty.ErrLine;
}

TEST(ServeSoak, ParserFaultsAreAnsweredExactlyOncePerLineAndIntakeLives) {
  // Probabilistic transient parse failures at the intake boundary: each
  // afflicted line must produce exactly one inline error frame -- in its
  // request-order slot -- and intake must keep going. The seeded stream
  // makes the run reproducible.
  const size_t N = 300;
  std::string Batch;
  for (size_t I = 0; I < N; ++I)
    Batch += "{\"id\":\"r" + std::to_string(I) +
             "\",\"cmd\":\"sat\",\"cnf\":\"" +
             jsonEscape("p cnf 1 1\n1 0\n") + "\"}\n";

  SoakRun R;
  {
    faultinject::ScopedFault Fault("jsonparse:interrupt%0.08;seed=7");
    ServeOptions SO;
    SO.Threads = 2;
    R = runRaw(Batch, SO);
  }
  std::vector<Frame> Frames = parseFrames(R.Raw);
  ASSERT_EQ(Frames.size(), N);
  size_t Ok = 0, Errors = 0;
  for (size_t I = 0; I < N; ++I) {
    const Frame &F = Frames[I];
    if (F.Status == "ok") {
      ++Ok;
      // Ok frames sit in their request-order slots with their own ids.
      EXPECT_EQ(F.Id, "r" + std::to_string(I));
      EXPECT_EQ(F.Body, "s SATISFIABLE\nv 1 0\n");
    } else {
      ++Errors;
      EXPECT_EQ(F.Status, "error") << "frame " << I;
      EXPECT_EQ(F.Code, "bad-request") << "frame " << I;
      EXPECT_TRUE(F.Body.empty()) << "frame " << I;
    }
  }
  EXPECT_EQ(Ok, R.Summary.Ok);
  EXPECT_EQ(Errors, R.Summary.Errors);
  EXPECT_GT(Errors, 0u) << "the campaign never fired; the soak proves "
                           "nothing at this seed";
  EXPECT_LT(Errors, N / 2);
  EXPECT_EQ(R.Summary.Requests, N);
  EXPECT_EQ(R.Summary.ExitCode, 1);
}
