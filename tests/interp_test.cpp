//===- interp_test.cpp - Concrete interpreter tests ----------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "lang/Sema.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace bugassist;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagEngine Diags;
  auto P = parseAndAnalyze(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.render();
  return P;
}

int64_t runInt(std::string_view Src, const InputVector &Inputs = {},
               ExecOptions Opts = {}) {
  auto P = compile(Src);
  Interpreter I(*P, Opts);
  ExecResult R = I.run("main", Inputs);
  EXPECT_EQ(R.Status, ExecStatus::Ok);
  return R.ReturnValue;
}

ExecResult runRaw(std::string_view Src, const InputVector &Inputs = {},
                  ExecOptions Opts = {}) {
  auto P = compile(Src);
  Interpreter I(*P, Opts);
  return I.run("main", Inputs);
}

} // namespace

TEST(Interp, Arithmetic) {
  EXPECT_EQ(runInt("int main() { return 2 + 3 * 4; }"), 14);
  EXPECT_EQ(runInt("int main() { return (2 + 3) * 4; }"), 20);
  EXPECT_EQ(runInt("int main() { return 17 / 5; }"), 3);
  EXPECT_EQ(runInt("int main() { return 17 % 5; }"), 2);
  EXPECT_EQ(runInt("int main() { return -17 / 5; }"), -3);
  EXPECT_EQ(runInt("int main() { return -17 % 5; }"), -2);
  EXPECT_EQ(runInt("int main() { return -(3 - 10); }"), 7);
}

TEST(Interp, BitwiseAndShifts) {
  EXPECT_EQ(runInt("int main() { return 12 & 10; }"), 8);
  EXPECT_EQ(runInt("int main() { return 12 | 10; }"), 14);
  EXPECT_EQ(runInt("int main() { return 12 ^ 10; }"), 6);
  EXPECT_EQ(runInt("int main() { return ~0; }"), -1);
  EXPECT_EQ(runInt("int main() { return 1 << 4; }"), 16);
  EXPECT_EQ(runInt("int main() { return -16 >> 2; }"), -4);
  // Saturating out-of-range shift semantics.
  EXPECT_EQ(runInt("int main() { return 1 << 40; }"), 0);
  EXPECT_EQ(runInt("int main() { return -1 >> 99; }"), -1);
  EXPECT_EQ(runInt("int main() { return 5 >> 99; }"), 0);
  EXPECT_EQ(runInt("int main() { int s = 0 - 1; return 1 << s; }"), 0);
}

TEST(Interp, WraparoundAtWidth) {
  ExecOptions O8;
  O8.BitWidth = 8;
  EXPECT_EQ(runInt("int main() { return 127 + 1; }", {}, O8), -128);
  EXPECT_EQ(runInt("int main() { return 100 * 3; }", {}, O8), 44); // 300 mod 256
  ExecOptions O16;
  O16.BitWidth = 16;
  EXPECT_EQ(runInt("int main() { return 32767 + 1; }", {}, O16), -32768);
}

TEST(Interp, IntMinDivMinusOneWraps) {
  ExecOptions O8;
  O8.BitWidth = 8;
  EXPECT_EQ(runInt("int main() { int m = -128; return m / -1; }", {}, O8),
            -128);
  EXPECT_EQ(runInt("int main() { int m = -128; return m % -1; }", {}, O8), 0);
}

TEST(Interp, ComparisonsAndLogical) {
  EXPECT_EQ(runInt("int main() { return 3 < 4 ? 1 : 0; }"), 1);
  EXPECT_EQ(runInt("int main() { return 4 <= 3 ? 1 : 0; }"), 0);
  EXPECT_EQ(runInt("int main() { return (3 == 3 && 2 != 1) ? 7 : 9; }"), 7);
  EXPECT_EQ(runInt("int main() { return (false || !false) ? 1 : 0; }"), 1);
}

TEST(Interp, InputsAndParams) {
  EXPECT_EQ(runInt("int main(int x, int y) { return x * 10 + y; }",
                   {InputValue::scalar(4), InputValue::scalar(2)}),
            42);
  EXPECT_EQ(runInt("int main(bool b) { return b ? 1 : 0; }",
                   {InputValue::scalar(1)}),
            1);
}

TEST(Interp, GlobalsInitializedAndMutable) {
  EXPECT_EQ(runInt("int g = 10; int main() { g = g + 5; return g; }"), 15);
  EXPECT_EQ(runInt("int g; int main() { return g; }"), 0);
  EXPECT_EQ(runInt("bool b = true; int main() { return b ? 2 : 3; }"), 2);
}

TEST(Interp, WhileLoop) {
  EXPECT_EQ(runInt("int main(int n) {"
                   "  int s = 0; int i = 1;"
                   "  while (i <= n) { s = s + i; i = i + 1; }"
                   "  return s;"
                   "}",
                   {InputValue::scalar(10)}),
            55);
}

TEST(Interp, ForLoopDesugared) {
  EXPECT_EQ(runInt("int main(int n) {"
                   "  int s = 0; int i;"
                   "  for (i = 0; i < n; i = i + 1) s = s + 2;"
                   "  return s;"
                   "}",
                   {InputValue::scalar(7)}),
            14);
}

TEST(Interp, FunctionsAndRecursion) {
  EXPECT_EQ(runInt("int add(int a, int b) { return a + b; }"
                   "int main() { return add(add(1, 2), 3); }"),
            6);
  EXPECT_EQ(runInt("int fact(int n) { if (n <= 1) return 1;"
                   "  return n * fact(n - 1); }"
                   "int main() { return fact(6); }"),
            720);
}

TEST(Interp, EarlyReturnSkipsRest) {
  EXPECT_EQ(runInt("int main(int x) {"
                   "  if (x > 0) return 1;"
                   "  x = 99;"
                   "  return x;"
                   "}",
                   {InputValue::scalar(5)}),
            1);
}

TEST(Interp, FallOffEndReturnsZero) {
  EXPECT_EQ(runInt("int f(int x) { if (x > 0) return 5; }"
                   "int main() { return f(-1); }"),
            0);
}

TEST(Interp, Arrays) {
  EXPECT_EQ(runInt("int main() {"
                   "  int a[5];"
                   "  int i;"
                   "  for (i = 0; i < 5; i = i + 1) a[i] = i * i;"
                   "  return a[0] + a[1] + a[2] + a[3] + a[4];"
                   "}"),
            30);
}

TEST(Interp, ArraysByReference) {
  EXPECT_EQ(runInt("void fill(int a[3], int v) {"
                   "  a[0] = v; a[1] = v + 1; a[2] = v + 2;"
                   "}"
                   "int main() { int b[3]; fill(b, 7); return b[2]; }"),
            9);
}

TEST(Interp, GlobalArray) {
  EXPECT_EQ(runInt("int tab[4];"
                   "void set(int i, int v) { tab[i] = v; }"
                   "int main() { set(2, 42); return tab[2]; }"),
            42);
}

TEST(Interp, ArrayInputs) {
  EXPECT_EQ(runInt("int main(int a[3]) { return a[0] + a[1] * a[2]; }",
                   {InputValue::array({5, 6, 7})}),
            47);
}

TEST(Interp, AssertFailure) {
  ExecResult R = runRaw("int main(int x) { assert(x < 10); return x; }",
                        {InputValue::scalar(12)});
  EXPECT_EQ(R.Status, ExecStatus::AssertFail);
  EXPECT_EQ(R.FailLoc.Line, 1u);
  EXPECT_TRUE(R.failed());
}

TEST(Interp, AssertPasses) {
  ExecResult R = runRaw("int main(int x) { assert(x < 10); return x; }",
                        {InputValue::scalar(3)});
  EXPECT_EQ(R.Status, ExecStatus::Ok);
}

TEST(Interp, AssumeBlocksExecution) {
  ExecResult R = runRaw("int main(int x) { assume(x > 0); assert(false); return x; }",
                        {InputValue::scalar(-1)});
  EXPECT_EQ(R.Status, ExecStatus::AssumeFail);
  EXPECT_FALSE(R.failed()) << "assume violation is not a bug";
}

TEST(Interp, PaperProgram1MotivatingExample) {
  // Program 1 from the paper: index == 1 takes the else branch, sets
  // index to 3, and the dereference is out of bounds.
  const char *Src = "int Array[3];\n"
                    "int testme(int index) {\n"
                    "  if (index != 1)\n"
                    "    index = 2;\n"
                    "  else\n"
                    "    index = index + 2;\n"
                    "  int i = index;\n"
                    "  assert(i >= 0 && i < 3);\n"
                    "  return Array[i];\n"
                    "}\n"
                    "int main(int index) { return testme(index); }\n";
  ExecResult Bad = runRaw(Src, {InputValue::scalar(1)});
  EXPECT_EQ(Bad.Status, ExecStatus::AssertFail);
  ExecResult Good = runRaw(Src, {InputValue::scalar(0)});
  EXPECT_EQ(Good.Status, ExecStatus::Ok);
}

TEST(Interp, BoundsCheckOnRead) {
  ExecResult R = runRaw("int main(int i) { int a[3]; return a[i]; }",
                        {InputValue::scalar(5)});
  EXPECT_EQ(R.Status, ExecStatus::BoundsFail);
}

TEST(Interp, BoundsCheckOnWrite) {
  ExecResult R = runRaw("int main(int i) { int a[3]; a[i] = 1; return 0; }",
                        {InputValue::scalar(-1)});
  EXPECT_EQ(R.Status, ExecStatus::BoundsFail);
}

TEST(Interp, BoundsUncheckedSemantics) {
  ExecOptions O;
  O.CheckArrayBounds = false;
  // OOB read yields 0; OOB write is dropped.
  EXPECT_EQ(runInt("int main(int i) { int a[3]; a[1] = 9; return a[i]; }",
                   {InputValue::scalar(7)}, O),
            0);
  EXPECT_EQ(runInt("int main(int i) { int a[3]; a[i] = 9; return a[1]; }",
                   {InputValue::scalar(7)}, O),
            0);
}

TEST(Interp, DivByZeroTrapped) {
  ExecResult R = runRaw("int main(int x) { return 10 / x; }",
                        {InputValue::scalar(0)});
  EXPECT_EQ(R.Status, ExecStatus::DivByZero);
  R = runRaw("int main(int x) { return 10 % x; }", {InputValue::scalar(0)});
  EXPECT_EQ(R.Status, ExecStatus::DivByZero);
}

TEST(Interp, DivByZeroUncheckedYieldsZero) {
  ExecOptions O;
  O.CheckDivByZero = false;
  EXPECT_EQ(runInt("int main(int x) { return 10 / x; }",
                   {InputValue::scalar(0)}, O),
            0);
}

TEST(Interp, StepLimitOnInfiniteLoop) {
  ExecOptions O;
  O.MaxSteps = 10000;
  ExecResult R = runRaw("int main() { while (true) { } return 0; }", {}, O);
  EXPECT_EQ(R.Status, ExecStatus::StepLimit);
}

TEST(Interp, SetupErrors) {
  auto P = compile("int main(int x) { return x; }");
  Interpreter I(*P);
  EXPECT_EQ(I.run("nosuch", {}).Status, ExecStatus::SetupError);
  EXPECT_EQ(I.run("main", {}).Status, ExecStatus::SetupError);
  EXPECT_EQ(I.run("main", {InputValue::array({1, 2})}).Status,
            ExecStatus::SetupError);
}

TEST(Interp, PaperProgram3Squareroot) {
  // Program 3 (Section 6.4) with the fix applied at line 13: res = i - 1.
  const char *Fixed = "int main() {\n"
                      "  int val = 50;\n"
                      "  int i = 1;\n"
                      "  int v = 0;\n"
                      "  int res = 0;\n"
                      "  while (v < val) {\n"
                      "    v = v + 2 * i + 1;\n"
                      "    i = i + 1;\n"
                      "  }\n"
                      "  res = i - 1;\n"
                      "  assert(res * res <= val && (res + 1) * (res + 1) > val);\n"
                      "  return res;\n"
                      "}\n";
  ExecResult R = runRaw(Fixed);
  EXPECT_EQ(R.Status, ExecStatus::Ok);
  EXPECT_EQ(R.ReturnValue, 7); // floor(sqrt(50))

  // The buggy version (res = i) must fail the assertion.
  const char *Buggy = "int main() {\n"
                      "  int val = 50;\n"
                      "  int i = 1;\n"
                      "  int v = 0;\n"
                      "  int res = 0;\n"
                      "  while (v < val) {\n"
                      "    v = v + 2 * i + 1;\n"
                      "    i = i + 1;\n"
                      "  }\n"
                      "  res = i;\n"
                      "  assert(res * res <= val && (res + 1) * (res + 1) > val);\n"
                      "  return res;\n"
                      "}\n";
  EXPECT_EQ(runRaw(Buggy).Status, ExecStatus::AssertFail);
}

// Differential property: evalBinaryOp/evalUnaryOp agree with native 64-bit
// arithmetic wrapped to width, across random operands and widths.
struct WidthCase {
  int Width;
  uint64_t Seed;
};
class InterpWidthTest : public ::testing::TestWithParam<WidthCase> {};

TEST_P(InterpWidthTest, WrapMatchesReference) {
  const auto &P = GetParam();
  Rng R(P.Seed);
  // Reference arithmetic runs in uint64_t: at width 64 the signed
  // expressions would overflow (UB the sanitizer build rejects).
  auto WrapU = [&P](uint64_t V) {
    return wrapToWidth(static_cast<int64_t>(V), P.Width);
  };
  for (int Round = 0; Round < 500; ++Round) {
    int64_t A = wrapToWidth(static_cast<int64_t>(R.next()), P.Width);
    int64_t B = wrapToWidth(static_cast<int64_t>(R.next()), P.Width);
    uint64_t UA = static_cast<uint64_t>(A), UB = static_cast<uint64_t>(B);
    bool Dz = false;
    int64_t Sum = evalBinaryOp(BinaryOp::Add, A, B, P.Width, Dz);
    EXPECT_EQ(Sum, WrapU(UA + UB));
    int64_t Diff = evalBinaryOp(BinaryOp::Sub, A, B, P.Width, Dz);
    EXPECT_EQ(Diff, WrapU(UA - UB));
    int64_t Prod = evalBinaryOp(BinaryOp::Mul, A, B, P.Width, Dz);
    EXPECT_EQ(Prod, WrapU(UA * UB));
    EXPECT_EQ(evalUnaryOp(UnaryOp::Neg, A, P.Width), WrapU(-UA));
    EXPECT_EQ(evalUnaryOp(UnaryOp::BitNot, A, P.Width),
              wrapToWidth(~A, P.Width));
    if (B != 0) {
      int64_t Q = evalBinaryOp(BinaryOp::Div, A, B, P.Width, Dz);
      int64_t M = evalBinaryOp(BinaryOp::Rem, A, B, P.Width, Dz);
      // Euclidean identity holds modulo wrap.
      EXPECT_EQ(WrapU(static_cast<uint64_t>(Q) * UB + static_cast<uint64_t>(M)),
                A);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, InterpWidthTest,
                         ::testing::Values(WidthCase{4, 11}, WidthCase{8, 12},
                                           WidthCase{16, 13},
                                           WidthCase{32, 14},
                                           WidthCase{64, 15}));
