//===- sat_test.cpp - CDCL solver unit & property tests ----------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sat/Solver.h"

#include "cnf/Cnf.h"
#include "support/FaultInject.h"
#include "support/Rng.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>

using namespace bugassist;

namespace {

/// Brute-force SAT check for <= 20 variables; the reference oracle for
/// property tests.
bool bruteForceSat(int NumVars, const std::vector<Clause> &Clauses) {
  for (uint64_t Mask = 0; Mask < (1ull << NumVars); ++Mask) {
    bool AllSat = true;
    for (const Clause &C : Clauses) {
      bool Sat = false;
      for (Lit L : C) {
        bool V = (Mask >> L.var()) & 1;
        if (V != L.negated()) {
          Sat = true;
          break;
        }
      }
      if (!Sat) {
        AllSat = false;
        break;
      }
    }
    if (AllSat)
      return true;
  }
  return false;
}

bool modelSatisfies(const Solver &S, const std::vector<Clause> &Clauses) {
  for (const Clause &C : Clauses) {
    bool Sat = false;
    for (Lit L : C)
      if (S.modelValue(L) == LBool::True) {
        Sat = true;
        break;
      }
    if (!Sat)
      return false;
  }
  return true;
}

std::vector<Clause> randomInstance(Rng &R, int NumVars, int NumClauses,
                                   int ClauseLen) {
  std::vector<Clause> Cs;
  for (int I = 0; I < NumClauses; ++I) {
    Clause C;
    std::set<Var> Used;
    while (static_cast<int>(C.size()) < ClauseLen) {
      Var V = static_cast<Var>(R.below(NumVars));
      if (!Used.insert(V).second)
        continue;
      C.push_back(mkLit(V, R.chance(1, 2)));
    }
    Cs.push_back(std::move(C));
  }
  return Cs;
}

} // namespace

TEST(Solver, EmptyFormulaIsSat) {
  Solver S;
  EXPECT_EQ(S.solve(), LBool::True);
}

TEST(Solver, SingleUnit) {
  Solver S;
  Var X = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(X)}));
  EXPECT_EQ(S.solve(), LBool::True);
  EXPECT_EQ(S.modelValue(X), LBool::True);
}

TEST(Solver, ContradictoryUnits) {
  Solver S;
  Var X = S.newVar();
  EXPECT_TRUE(S.addClause({mkLit(X)}));
  EXPECT_FALSE(S.addClause({~mkLit(X)}));
  EXPECT_FALSE(S.okay());
  EXPECT_EQ(S.solve(), LBool::False);
}

TEST(Solver, UnitPropagationChain) {
  // x1, x1->x2, x2->x3, ..., x9->x10; all become true.
  Solver S;
  S.ensureVars(10);
  ASSERT_TRUE(S.addClause({mkLit(0)}));
  for (Var V = 0; V < 9; ++V)
    ASSERT_TRUE(S.addClause({~mkLit(V), mkLit(V + 1)}));
  ASSERT_EQ(S.solve(), LBool::True);
  for (Var V = 0; V < 10; ++V)
    EXPECT_EQ(S.modelValue(V), LBool::True) << "var " << V;
}

TEST(Solver, TautologyDropped) {
  Solver S;
  Var X = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(X), ~mkLit(X)}));
  EXPECT_EQ(S.solve(), LBool::True);
}

TEST(Solver, DuplicateLiteralsMerged) {
  Solver S;
  Var X = S.newVar(), Y = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(X), mkLit(X), mkLit(Y)}));
  ASSERT_TRUE(S.addClause({~mkLit(Y)}));
  // Duplicate-merged (x \/ y) with ~y forces x; this clause then empties
  // under level-0 simplification and addClause reports UNSAT eagerly.
  EXPECT_FALSE(S.addClause({~mkLit(X), mkLit(Y)}));
  EXPECT_EQ(S.solve(), LBool::False);
}

TEST(Solver, SimpleUnsatTriangle) {
  // (a \/ b) (a \/ ~b) (~a \/ b) (~a \/ ~b) is UNSAT.
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause({mkLit(A), mkLit(B)});
  S.addClause({mkLit(A), ~mkLit(B)});
  S.addClause({~mkLit(A), mkLit(B)});
  S.addClause({~mkLit(A), ~mkLit(B)});
  EXPECT_EQ(S.solve(), LBool::False);
}

TEST(Solver, PigeonHole4Into3) {
  // PHP(4,3): 4 pigeons, 3 holes, UNSAT; forces real conflict analysis.
  Solver S;
  const int P = 4, H = 3;
  auto VarOf = [&](int Pi, int Hi) { return Pi * H + Hi; };
  S.ensureVars(P * H);
  for (int Pi = 0; Pi < P; ++Pi) {
    Clause C;
    for (int Hi = 0; Hi < H; ++Hi)
      C.push_back(mkLit(VarOf(Pi, Hi)));
    S.addClause(C);
  }
  for (int Hi = 0; Hi < H; ++Hi)
    for (int P1 = 0; P1 < P; ++P1)
      for (int P2 = P1 + 1; P2 < P; ++P2)
        S.addClause({~mkLit(VarOf(P1, Hi)), ~mkLit(VarOf(P2, Hi))});
  EXPECT_EQ(S.solve(), LBool::False);
  EXPECT_GT(S.stats().Conflicts, 0u);
}

TEST(Solver, PigeonHole5Into5IsSat) {
  Solver S;
  const int P = 5, H = 5;
  auto VarOf = [&](int Pi, int Hi) { return Pi * H + Hi; };
  S.ensureVars(P * H);
  std::vector<Clause> All;
  for (int Pi = 0; Pi < P; ++Pi) {
    Clause C;
    for (int Hi = 0; Hi < H; ++Hi)
      C.push_back(mkLit(VarOf(Pi, Hi)));
    All.push_back(C);
  }
  for (int Hi = 0; Hi < H; ++Hi)
    for (int P1 = 0; P1 < P; ++P1)
      for (int P2 = P1 + 1; P2 < P; ++P2)
        All.push_back({~mkLit(VarOf(P1, Hi)), ~mkLit(VarOf(P2, Hi))});
  for (const Clause &C : All)
    S.addClause(C);
  ASSERT_EQ(S.solve(), LBool::True);
  EXPECT_TRUE(modelSatisfies(S, All));
}

TEST(Solver, AssumptionsSatAndUnsat) {
  // Preprocessing off: b is assumed only in the *second* solve, and the
  // frozen-variable contract (tested in simplify_test) requires such
  // late-bound assumption variables to be frozen up front. This test is
  // about assumption handling, not the contract.
  Solver::Options O;
  O.Preprocess = false;
  Solver S{O};
  Var A = S.newVar(), B = S.newVar();
  S.addClause({~mkLit(A), mkLit(B)}); // a -> b
  EXPECT_EQ(S.solve({mkLit(A)}), LBool::True);
  EXPECT_EQ(S.modelValue(B), LBool::True);
  EXPECT_EQ(S.solve({mkLit(A), ~mkLit(B)}), LBool::False);
  // Solver state must survive for reuse.
  EXPECT_EQ(S.solve({mkLit(A)}), LBool::True);
  EXPECT_EQ(S.solve(), LBool::True);
}

TEST(Solver, ConflictCoreIsSubsetOfAssumptions) {
  Solver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar(), D = S.newVar();
  S.addClause({~mkLit(A), ~mkLit(B)}); // a,b incompatible
  (void)D;
  std::vector<Lit> Assumps = {mkLit(A), mkLit(B), mkLit(C), mkLit(D)};
  ASSERT_EQ(S.solve(Assumps), LBool::False);
  const auto &Core = S.conflictCore();
  EXPECT_FALSE(Core.empty());
  for (Lit L : Core)
    EXPECT_TRUE(std::find(Assumps.begin(), Assumps.end(), L) != Assumps.end())
        << "core literal " << L.str() << " not among assumptions";
  // c and d are irrelevant; core must not mention them.
  for (Lit L : Core) {
    EXPECT_NE(L.var(), C);
    EXPECT_NE(L.var(), D);
  }
}

TEST(Solver, CoreFromChainedImplications) {
  // a -> x, x -> y, y -> ~b: assuming a and b is UNSAT; core = {a, b}.
  Solver S;
  Var A = S.newVar(), B = S.newVar(), X = S.newVar(), Y = S.newVar();
  S.addClause({~mkLit(A), mkLit(X)});
  S.addClause({~mkLit(X), mkLit(Y)});
  S.addClause({~mkLit(Y), ~mkLit(B)});
  ASSERT_EQ(S.solve({mkLit(A), mkLit(B)}), LBool::False);
  std::set<Var> CoreVars;
  for (Lit L : S.conflictCore())
    CoreVars.insert(L.var());
  EXPECT_TRUE(CoreVars.count(A));
  EXPECT_TRUE(CoreVars.count(B));
}

TEST(Solver, RedundantAssumptionHandled) {
  Solver S;
  Var A = S.newVar();
  S.addClause({mkLit(A)});
  // Assumption already implied at level 0.
  EXPECT_EQ(S.solve({mkLit(A)}), LBool::True);
  // Assumption contradicting a level-0 unit.
  EXPECT_EQ(S.solve({~mkLit(A)}), LBool::False);
}

TEST(Solver, ConflictBudgetReturnsUndef) {
  // A hard random instance with a budget of 1 conflict usually gives Undef;
  // at minimum it must not crash and must return a defined result when the
  // budget is lifted.
  Rng R(42);
  auto Cs = randomInstance(R, 30, 128, 3);
  Solver S;
  S.ensureVars(30);
  bool Ok = true;
  for (const Clause &C : Cs)
    Ok = Ok && S.addClause(C);
  if (Ok) {
    S.setConflictBudget(1);
    LBool First = S.solve();
    S.setConflictBudget(0);
    LBool Second = S.solve();
    EXPECT_NE(Second, LBool::Undef);
    if (First != LBool::Undef) {
      EXPECT_EQ(First, Second);
    }
  }
}

TEST(Solver, AddFormulaLoadsGroupsAsHard) {
  CnfFormula F;
  Var X = F.newVar();
  GroupId G = F.newGroup(1);
  F.addGroupedClause(G, {mkLit(X)});
  // The second solve assumes x, which the first solve's preprocessing pass
  // may eliminate (the frozen contract is simplify_test's subject, not
  // this test's): keep the pass off so group semantics stay the focus.
  Solver::Options O;
  O.Preprocess = false;
  Solver S{O};
  ASSERT_TRUE(S.addFormula(F));
  // With the selector asserted, x must hold.
  ASSERT_EQ(S.solve({F.selectorLit(G)}), LBool::True);
  EXPECT_EQ(S.modelValue(X), LBool::True);
  // With the selector negated the clause is disabled; ~x is fine.
  ASSERT_EQ(S.solve({~F.selectorLit(G), ~mkLit(X)}), LBool::True);
}

// Property test: solver agrees with brute force on hundreds of random
// instances around the 3-SAT phase transition (clause/var ~ 4.3).
struct RandomSatCase {
  int NumVars;
  int NumClauses;
  uint64_t Seed;
};

class SolverRandomTest : public ::testing::TestWithParam<RandomSatCase> {};

TEST_P(SolverRandomTest, AgreesWithBruteForce) {
  const auto &P = GetParam();
  Rng R(P.Seed);
  for (int Round = 0; Round < 30; ++Round) {
    auto Cs = randomInstance(R, P.NumVars, P.NumClauses, 3);
    Solver S;
    S.ensureVars(P.NumVars);
    bool Ok = true;
    for (const Clause &C : Cs)
      Ok = Ok && S.addClause(C);
    bool Expected = bruteForceSat(P.NumVars, Cs);
    if (!Ok) {
      EXPECT_FALSE(Expected);
      continue;
    }
    LBool Got = S.solve();
    ASSERT_NE(Got, LBool::Undef);
    EXPECT_EQ(Got == LBool::True, Expected)
        << "vars=" << P.NumVars << " clauses=" << P.NumClauses
        << " seed=" << P.Seed << " round=" << Round;
    if (Got == LBool::True) {
      EXPECT_TRUE(modelSatisfies(S, Cs));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PhaseTransitionSweep, SolverRandomTest,
    ::testing::Values(RandomSatCase{6, 20, 1}, RandomSatCase{6, 30, 2},
                      RandomSatCase{8, 34, 3}, RandomSatCase{8, 40, 4},
                      RandomSatCase{10, 42, 5}, RandomSatCase{10, 50, 6},
                      RandomSatCase{12, 51, 7}, RandomSatCase{12, 60, 8},
                      RandomSatCase{14, 60, 9}, RandomSatCase{14, 70, 10},
                      RandomSatCase{16, 68, 11}, RandomSatCase{16, 80, 12}));

// Property: under random assumptions, an UNSAT answer's core re-verifies
// as UNSAT when solved with exactly the core as assumptions.
TEST(Solver, CoreReverifies) {
  Rng R(777);
  for (int Round = 0; Round < 40; ++Round) {
    int NumVars = 10;
    auto Cs = randomInstance(R, NumVars, 30, 3);
    Solver S;
    S.ensureVars(NumVars);
    bool Ok = true;
    for (const Clause &C : Cs)
      Ok = Ok && S.addClause(C);
    if (!Ok)
      continue;
    std::vector<Lit> Assumps;
    for (Var V = 0; V < 5; ++V)
      Assumps.push_back(mkLit(V, R.chance(1, 2)));
    if (S.solve(Assumps) != LBool::False)
      continue;
    std::vector<Lit> Core = S.conflictCore();
    Solver S2;
    S2.ensureVars(NumVars);
    bool Ok2 = true;
    for (const Clause &C : Cs)
      Ok2 = Ok2 && S2.addClause(C);
    if (!Ok2)
      continue;
    EXPECT_EQ(S2.solve(Core), LBool::False)
        << "core failed to reverify (round " << Round << ")";
  }
}

TEST(Solver, StatsAreTracked) {
  Solver S;
  Var A = S.newVar(), B = S.newVar();
  S.addClause({mkLit(A), mkLit(B)});
  S.solve();
  EXPECT_GE(S.stats().Decisions, 1u);
}

TEST(Solver, PolarityHintRespectedWhenFree) {
  Solver S;
  Var A = S.newVar();
  Var B = S.newVar();
  S.addClause({mkLit(A), mkLit(B)});
  S.setPolarity(A, true);
  S.setPolarity(B, true);
  ASSERT_EQ(S.solve(), LBool::True);
  // Both saved phases point at true; at least the first decision follows.
  EXPECT_TRUE(S.modelValue(A) == LBool::True ||
              S.modelValue(B) == LBool::True);
}

TEST(Solver, IncrementalStatePersistsAcrossSolves) {
  // Pigeonhole (7 pigeons, 6 holes) with each pigeon's placement clause
  // guarded by an assumption literal: UNSAT under all guards, and hard
  // enough that the first refutation must learn clauses. The SAME solver
  // is solved repeatedly; learned clauses and stats must persist, making
  // later identical calls strictly cheaper -- the property the incremental
  // MaxSAT layer is built on.
  const int Holes = 6, Pigeons = Holes + 1;
  Solver S;
  S.ensureVars(Pigeons * Holes);
  auto VarOf = [](int P, int H) { return P * Holes + H; };
  std::vector<Lit> Assumps;
  for (int P = 0; P < Pigeons; ++P) {
    Clause C;
    for (int H = 0; H < Holes; ++H)
      C.push_back(mkLit(VarOf(P, H)));
    Var G = S.newVar();
    C.push_back(mkLit(G, /*Negated=*/true));
    ASSERT_TRUE(S.addClause(C));
    Assumps.push_back(mkLit(G));
  }
  for (int H = 0; H < Holes; ++H)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        ASSERT_TRUE(S.addClause({~mkLit(VarOf(P1, H)), ~mkLit(VarOf(P2, H))}));

  ASSERT_EQ(S.solve(Assumps), LBool::False);
  const uint64_t Conflicts1 = S.stats().Conflicts;
  const uint64_t Learned1 = S.stats().LearnedClauses;
  EXPECT_GT(Conflicts1, 0u);
  EXPECT_GT(Learned1, 0u) << "first refutation should learn clauses";

  ASSERT_EQ(S.solve(Assumps), LBool::False);
  const uint64_t Conflicts2 = S.stats().Conflicts - Conflicts1;
  // Stats are cumulative across calls ...
  EXPECT_GE(S.stats().Conflicts, Conflicts1);
  EXPECT_GE(S.stats().LearnedClauses, Learned1);
  // ... and the persisted learned clauses make the re-refutation cheaper.
  EXPECT_LT(Conflicts2, Conflicts1)
      << "second solve on the same instance should reuse learned clauses";

  // Dropping one guard makes the instance satisfiable: the persistent
  // solver must still answer positively after repeated UNSAT calls.
  Assumps.pop_back();
  EXPECT_EQ(S.solve(Assumps), LBool::True);
}

// --- resource budgets --------------------------------------------------------

namespace {

/// Loads PHP(Holes + 1, Holes) -- hard enough that refutation needs real
/// search for Holes >= 6, far beyond any test deadline for Holes >= 9.
void loadPigeonhole(Solver &S, int Holes) {
  int Pigeons = Holes + 1;
  auto VarOf = [Holes](int P, int H) { return P * Holes + H; };
  S.ensureVars(Pigeons * Holes);
  for (int P = 0; P < Pigeons; ++P) {
    Clause C;
    for (int H = 0; H < Holes; ++H)
      C.push_back(mkLit(VarOf(P, H)));
    ASSERT_TRUE(S.addClause(C));
  }
  for (int H = 0; H < Holes; ++H)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        ASSERT_TRUE(S.addClause({~mkLit(VarOf(P1, H)), ~mkLit(VarOf(P2, H))}));
}

} // namespace

TEST(SolverBudget, ConflictCapReturnsUndefAndIsSticky) {
  Solver S;
  loadPigeonhole(S, 7);
  Solver::Budget B;
  B.MaxConflicts = 10;
  S.setBudget(B);
  EXPECT_EQ(S.solve(), LBool::Undef);
  EXPECT_TRUE(S.budgetExhausted());
  // Exhaustion is sticky: further solves return Undef immediately instead
  // of burning another 10 conflicts each.
  uint64_t ConflictsAfterFirst = S.stats().Conflicts;
  EXPECT_EQ(S.solve(), LBool::Undef);
  EXPECT_EQ(S.stats().Conflicts, ConflictsAfterFirst);
  // clearBudget re-arms the solver; the refutation then completes.
  S.clearBudget();
  EXPECT_FALSE(S.budgetExhausted());
  EXPECT_EQ(S.solve(), LBool::False);
}

TEST(SolverBudget, ReinstallingABudgetResetsTheBaseline) {
  Solver S;
  loadPigeonhole(S, 7);
  Solver::Budget B;
  B.MaxConflicts = 10;
  S.setBudget(B);
  EXPECT_EQ(S.solve(), LBool::Undef);
  // A fresh setBudget counts conflicts from now, not from construction:
  // the accumulated spend must not instantly re-exhaust it.
  Solver::Budget Big;
  Big.MaxConflicts = 1000000;
  S.setBudget(Big);
  EXPECT_FALSE(S.budgetExhausted());
  EXPECT_EQ(S.solve(), LBool::False);
}

TEST(SolverBudget, DeadlineStopsALongRefutationPromptly) {
  // PHP(10, 9) would run for a very long time; a 50 ms deadline must turn
  // that into a prompt Undef.
  Solver S;
  loadPigeonhole(S, 9);
  Solver::Budget B;
  B.setDeadlineIn(0.05);
  S.setBudget(B);
  Timer T;
  EXPECT_EQ(S.solve(), LBool::Undef);
  EXPECT_TRUE(S.budgetExhausted());
  EXPECT_LT(T.seconds(), 5.0) << "deadline was not honored promptly";
}

TEST(SolverBudget, PropagationCapReturnsUndef) {
  Solver S;
  loadPigeonhole(S, 7);
  Solver::Budget B;
  B.MaxPropagations = 100;
  S.setBudget(B);
  EXPECT_EQ(S.solve(), LBool::Undef);
  EXPECT_TRUE(S.budgetExhausted());
}

TEST(SolverBudget, ArenaCapDegradesToUnknownInsteadOfThrowing) {
  // A cap far below what the refutation's learnt clauses need: the solver
  // must hand back Undef (never throw, never wedge) once the arena would
  // outgrow it. PHP(7)'s problem clauses alone exceed 4 KiB, so the very
  // first learnt allocation trips the cap.
  Solver S;
  loadPigeonhole(S, 7);
  Solver::Budget B;
  B.MaxArenaBytes = 4096;
  S.setBudget(B);
  EXPECT_EQ(S.solve(), LBool::Undef);
  EXPECT_TRUE(S.budgetExhausted());
}

TEST(SolverBudget, UnlimitedBudgetIsANoOp) {
  Solver S;
  loadPigeonhole(S, 5);
  S.setBudget(Solver::Budget()); // all knobs zero: unlimited
  EXPECT_EQ(S.solve(), LBool::False);
  EXPECT_FALSE(S.budgetExhausted());
}

// --- interrupt edge cases ----------------------------------------------------

TEST(SolverInterrupt, InterruptBeforeSolveReturnsUndef) {
  Solver S;
  S.ensureVars(2);
  ASSERT_TRUE(S.addClause({mkLit(0), mkLit(1)}));
  S.interrupt();
  EXPECT_EQ(S.solve(), LBool::Undef);
  EXPECT_TRUE(S.interrupted());
  // The flag is sticky until cleared; afterwards the solver works again.
  EXPECT_EQ(S.solve(), LBool::Undef);
  S.clearInterrupt();
  EXPECT_EQ(S.solve(), LBool::True);
}

TEST(SolverInterrupt, InterruptDuringLongImplicationChainPropagation) {
  // A 30k-step binary implication chain hangs off a pigeonhole core. The
  // chain is propagated in full inside single search iterations (interrupt
  // polls sit between iterations, not inside propagate()), so the
  // interrupt must land cleanly with the trail mid-chain-consistent.
  const int ChainLen = 30000;
  const int Holes = 9;
  Solver S;
  loadPigeonhole(S, Holes);
  int Base = (Holes + 1) * Holes;
  S.ensureVars(Base + ChainLen);
  ASSERT_TRUE(S.addClause({mkLit(Base)}));
  for (int I = 0; I < ChainLen - 1; ++I)
    ASSERT_TRUE(S.addClause({~mkLit(Base + I), mkLit(Base + I + 1)}));

  LBool Result = LBool::True;
  std::thread Runner([&] { Result = S.solve(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  S.interrupt();
  Runner.join();
  EXPECT_EQ(Result, LBool::Undef);
  // The unit head forces the whole chain at level 0.
  EXPECT_GE(S.stats().Propagations, static_cast<uint64_t>(ChainLen));
}

TEST(SolverInterrupt, SolverReuseAfterInterruptKeepsSaneStats) {
  // interrupt -> solve -> clear -> solve -> solve on ONE solver: the
  // post-interrupt solve must decide correctly and cumulative stats must
  // stay monotone across the whole sequence.
  Solver S;
  loadPigeonhole(S, 6);
  S.interrupt();
  EXPECT_EQ(S.solve(), LBool::Undef);
  SolverStats After1 = S.stats();

  S.clearInterrupt();
  EXPECT_FALSE(S.interrupted());
  EXPECT_EQ(S.solve(), LBool::False);
  SolverStats After2 = S.stats();
  EXPECT_GE(After2.Conflicts, After1.Conflicts);
  EXPECT_GE(After2.Propagations, After1.Propagations);
  EXPECT_GT(After2.Decisions, After1.Decisions);

  // Root-level UNSAT is cached: a third solve answers instantly and the
  // counters never move backwards.
  EXPECT_EQ(S.solve(), LBool::False);
  EXPECT_GE(S.stats().Conflicts, After2.Conflicts);
  EXPECT_GE(S.stats().Propagations, After2.Propagations);
}

// --- fault injection (test-only hook) ----------------------------------------

TEST(SolverFaultInject, SpuriousInterruptAtNthAllocationStopsSolve) {
  Solver S;
  loadPigeonhole(S, 7);
  // The refutation must learn clauses, so allocation events are
  // guaranteed; the injected fault converts the 3rd one into an interrupt.
  LBool R;
  {
    faultinject::ScopedFault Fault(faultinject::Event::Allocation,
                                   faultinject::Fault::Interrupt, 3);
    R = S.solve();
  }
  EXPECT_EQ(R, LBool::Undef);
  EXPECT_TRUE(S.interrupted());
  S.clearInterrupt();
  EXPECT_EQ(S.solve(), LBool::False);
}

TEST(SolverFaultInject, InjectedBadAllocPropagatesOutOfSolve) {
  // Single solver, no portfolio: the exception must escape solve() (the
  // thread-boundary isolation lives in the portfolio, not here).
  Solver S;
  loadPigeonhole(S, 7);
  faultinject::ScopedFault Fault(faultinject::Event::Allocation,
                                 faultinject::Fault::BadAlloc, 1);
  EXPECT_THROW(S.solve(), std::bad_alloc);
}
