//===- tcas_test.cpp - TCAS benchmark tests (Section 6.1) -------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "programs/TcasMutants.h"

#include "core/BugAssist.h"
#include "lang/Sema.h"
#include "programs/Tcas.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace bugassist;

namespace {

std::unique_ptr<Program> compile(const std::string &Src) {
  DiagEngine Diags;
  auto P = parseAndAnalyze(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.render();
  return P;
}

int64_t runTcas(const Program &P, const InputVector &In) {
  Interpreter I(P, tcasExecOptions());
  ExecResult R = I.run("main", In);
  EXPECT_EQ(R.Status, ExecStatus::Ok);
  return R.ReturnValue;
}

InputVector tcasInput(int64_t Cvs, int64_t Hc, int64_t Ttrv, int64_t Ota,
                      int64_t Otar, int64_t Otra, int64_t Alv, int64_t Us,
                      int64_t Ds, int64_t Orac, int64_t Ocap, int64_t Ci) {
  return {InputValue::scalar(Cvs),  InputValue::scalar(Hc),
          InputValue::scalar(Ttrv), InputValue::scalar(Ota),
          InputValue::scalar(Otar), InputValue::scalar(Otra),
          InputValue::scalar(Alv),  InputValue::scalar(Us),
          InputValue::scalar(Ds),   InputValue::scalar(Orac),
          InputValue::scalar(Ocap), InputValue::scalar(Ci)};
}

} // namespace

TEST(Tcas, CorrectVersionCompilesAndRuns) {
  auto P = compile(tcasSource());
  // Disabled system: not enabled -> UNRESOLVED.
  EXPECT_EQ(runTcas(*P, tcasInput(601, 0, 1, 2000, 100, 2500, 1, 500, 400,
                                  0, 2, 0)),
            0);
}

TEST(Tcas, UpwardAdvisoryScenario) {
  auto P = compile(tcasSource());
  // Own below threat, descend blocked: Down_Separation below ALIM(0)=400,
  // Up above; intruder not TCAS-equipped.
  int64_t Out = runTcas(
      *P, tcasInput(/*Cvs=*/800, /*Hc=*/1, /*Ttrv=*/1, /*Ota=*/2000,
                    /*Otar=*/100, /*Otra=*/2800, /*Alv=*/0, /*Us=*/700,
                    /*Ds=*/300, /*Orac=*/0, /*Ocap=*/2, /*Ci=*/0));
  EXPECT_EQ(Out, 1);
}

TEST(Tcas, DownwardAdvisoryScenario) {
  auto P = compile(tcasSource());
  // Own above threat; descend-side else branch fires with Up_Separation
  // comfortably above ALIM(0) = 400 and no upward preference.
  int64_t Out = runTcas(
      *P, tcasInput(/*Cvs=*/800, /*Hc=*/1, /*Ttrv=*/1, /*Ota=*/2800,
                    /*Otar=*/100, /*Otra=*/2000, /*Alv=*/0, /*Us=*/700,
                    /*Ds=*/700, /*Orac=*/0, /*Ocap=*/2, /*Ci=*/0));
  EXPECT_EQ(Out, 2);
}

TEST(Tcas, PoolIsDeterministic) {
  auto A = tcasTestPool(50, 7);
  auto B = tcasTestPool(50, 7);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_TRUE(A[I] == B[I]) << "test " << I;
  auto C = tcasTestPool(50, 8);
  bool AnyDiff = false;
  for (size_t I = 0; I < A.size(); ++I)
    AnyDiff |= !(A[I] == C[I]);
  EXPECT_TRUE(AnyDiff);
}

TEST(Tcas, AllMutantsCompile) {
  ASSERT_EQ(tcasMutants().size(), 41u);
  for (const TcasMutant &M : tcasMutants()) {
    DiagEngine Diags;
    auto P = parseAndAnalyze(M.Source, Diags);
    EXPECT_TRUE(P != nullptr)
        << "v" << M.Version << ": " << Diags.render();
    EXPECT_FALSE(M.BugLines.empty()) << "v" << M.Version;
    EXPECT_EQ(M.ErrorCount, static_cast<int>(M.BugLines.size()))
        << "v" << M.Version;
  }
}

TEST(Tcas, MutantsDifferFromBaseExceptNeutralOnes) {
  auto Golden = compile(tcasSource());
  auto Pool = tcasTestPool(1600); // the paper's pool size
  Interpreter GI(*Golden, tcasExecOptions());

  size_t VersionsWithFailures = 0;
  for (const TcasMutant &M : tcasMutants()) {
    auto P = compile(M.Source);
    Interpreter MI(*P, tcasExecOptions());
    size_t Failing = 0;
    for (const InputVector &In : Pool) {
      int64_t Want = GI.run("main", In).ReturnValue;
      int64_t Got = MI.run("main", In).ReturnValue;
      Failing += Want != Got;
    }
    if (M.Version == 33 || M.Version == 38) {
      EXPECT_EQ(Failing, 0u) << "v" << M.Version
                             << " is designed to be failure-free";
    }
    VersionsWithFailures += Failing > 0;
  }
  // The 39 Table 1 versions must all be distinguishable by the pool.
  EXPECT_EQ(VersionsWithFailures, 39u);
}

TEST(Tcas, LocalizationPinpointsFigure2Fault) {
  // v2 is the Figure 2 case study: constant 100 -> 300 on line 24.
  const TcasMutant &V2 = tcasMutants()[1];
  ASSERT_EQ(V2.Version, 2);
  ASSERT_EQ(V2.BugLines.size(), 1u);
  const uint32_t BugLine = V2.BugLines[0];

  auto Golden = compile(tcasSource());
  auto Faulty = compile(V2.Source);
  Interpreter GI(*Golden, tcasExecOptions());
  Interpreter FI(*Faulty, tcasExecOptions());

  // Find one failing test from the pool.
  InputVector Failing;
  int64_t Want = 0;
  for (const InputVector &In : tcasTestPool(600)) {
    int64_t G = GI.run("main", In).ReturnValue;
    if (FI.run("main", In).ReturnValue != G) {
      Failing = In;
      Want = G;
      break;
    }
  }
  ASSERT_FALSE(Failing.empty()) << "pool does not exercise v2";

  BugAssistDriver Driver(*Faulty, "main", tcasUnrollOptions());
  Spec S;
  S.CheckObligations = false;
  S.GoldenReturn = Want;
  LocalizeOptions LO;
  LO.MaxDiagnoses = 32;
  LocalizationReport R = Driver.localize(Failing, S, LO);
  ASSERT_FALSE(R.Diagnoses.empty());
  EXPECT_TRUE(std::find(R.AllLines.begin(), R.AllLines.end(), BugLine) !=
              R.AllLines.end())
      << "line " << BugLine << " not among reported lines";
  // SizeReduc: suspect set is a small fraction of the ~100-line program.
  EXPECT_LT(R.AllLines.size(), 30u);
}

TEST(Tcas, LocalizationSampleAcrossVersions) {
  // Spot-check detection on a few structurally different versions.
  auto Golden = compile(tcasSource());
  Interpreter GI(*Golden, tcasExecOptions());
  auto Pool = tcasTestPool(600);

  for (int Version : {5, 12, 16, 28, 37}) {
    const TcasMutant &M = tcasMutants()[static_cast<size_t>(Version - 1)];
    ASSERT_EQ(M.Version, Version);
    auto Faulty = compile(M.Source);
    Interpreter FI(*Faulty, tcasExecOptions());

    InputVector Failing;
    int64_t Want = 0;
    for (const InputVector &In : Pool) {
      int64_t G = GI.run("main", In).ReturnValue;
      if (FI.run("main", In).ReturnValue != G) {
        Failing = In;
        Want = G;
        break;
      }
    }
    ASSERT_FALSE(Failing.empty()) << "v" << Version << " not exercised";

    BugAssistDriver Driver(*Faulty, "main", tcasUnrollOptions());
    Spec S;
    S.CheckObligations = false;
    S.GoldenReturn = Want;
    LocalizeOptions LO;
    LO.MaxDiagnoses = 32;
    LocalizationReport R = Driver.localize(Failing, S, LO);
    ASSERT_FALSE(R.Diagnoses.empty()) << "v" << Version;
    bool Detected = false;
    for (uint32_t L : M.BugLines)
      Detected |= std::find(R.AllLines.begin(), R.AllLines.end(), L) !=
                  R.AllLines.end();
    EXPECT_TRUE(Detected) << "v" << Version << " bug line not reported";
  }
}
