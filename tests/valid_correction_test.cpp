//===- valid_correction_test.cpp - CoMSS soundness properties ------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Properties tying the two views of a diagnosis together:
//  * every CoMSS reported by Algorithm 1 is a valid correction
//    (isValidCorrection accepts it);
//  * removing a line from a CoMSS breaks it (minimality);
//  * a line with no influence on the spec is never a valid correction.
//
//===----------------------------------------------------------------------===//

#include "core/BugAssist.h"

#include "lang/Sema.h"

#include <gtest/gtest.h>

using namespace bugassist;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagEngine Diags;
  auto P = parseAndAnalyze(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.render();
  return P;
}

} // namespace

TEST(ValidCorrection, EveryReportedCoMSSIsACorrection) {
  const char *Src = "int main(int x) {\n"
                    "  int a = x + 1;\n"
                    "  int b = a * 2;\n"
                    "  int c = b - x;\n"
                    "  assert(c == x + 1);\n"
                    "  return c;\n"
                    "}\n";
  auto P = compile(Src);
  BugAssistDriver Driver(*P, "main");
  InputVector Fail{InputValue::scalar(0)};
  LocalizationReport R = Driver.localize(Fail, Spec{});
  ASSERT_FALSE(R.Diagnoses.empty());
  for (const Diagnosis &D : R.Diagnoses)
    EXPECT_TRUE(isValidCorrection(Driver.formula(), Fail, Spec{}, D.Lines))
        << "CoMSS not a correction";
}

TEST(ValidCorrection, CoMSSIsMinimal) {
  // Two wrong constants, spec pins both: the CoMSS must contain both
  // lines, and neither alone is a correction.
  const char *Src = "int main(int x) {\n"
                    "  int a = 9;\n"
                    "  int b = 9;\n"
                    "  assert(a == 1 && b == 2);\n"
                    "  return a + b;\n"
                    "}\n";
  auto P = compile(Src);
  BugAssistDriver Driver(*P, "main");
  InputVector Fail{InputValue::scalar(0)};
  LocalizationReport R = Driver.localize(Fail, Spec{});
  ASSERT_FALSE(R.Diagnoses.empty());
  const Diagnosis &D = R.Diagnoses[0];
  ASSERT_EQ(D.Lines.size(), 2u);
  EXPECT_TRUE(isValidCorrection(Driver.formula(), Fail, Spec{}, D.Lines));
  for (uint32_t Drop : D.Lines) {
    std::vector<uint32_t> Partial;
    for (uint32_t L : D.Lines)
      if (L != Drop)
        Partial.push_back(L);
    EXPECT_FALSE(isValidCorrection(Driver.formula(), Fail, Spec{}, Partial))
        << "CoMSS minus line " << Drop << " should not fix the failure";
  }
}

TEST(ValidCorrection, IrrelevantLineIsNotACorrection) {
  const char *Src = "int main(int x) {\n"
                    "  int dead = x * 7;\n"
                    "  int y = x + 1;\n"
                    "  assert(y == x + 2);\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  BugAssistDriver Driver(*P, "main");
  InputVector Fail{InputValue::scalar(0)};
  EXPECT_FALSE(isValidCorrection(Driver.formula(), Fail, Spec{}, {2}))
      << "a line the spec cannot observe is never a fix";
  EXPECT_TRUE(isValidCorrection(Driver.formula(), Fail, Spec{}, {3}));
}

TEST(ValidCorrection, EmptySetOnlyWorksForPassingTests) {
  const char *Src = "int main(int x) {\n"
                    "  assert(x < 5);\n"
                    "  return x;\n"
                    "}\n";
  auto P = compile(Src);
  BugAssistDriver Driver(*P, "main");
  // Failing test: nothing to disable means no fix.
  EXPECT_FALSE(isValidCorrection(Driver.formula(), {InputValue::scalar(9)},
                                 Spec{}, {}));
  // Passing test: the empty set trivially "fixes" it.
  EXPECT_TRUE(isValidCorrection(Driver.formula(), {InputValue::scalar(1)},
                                Spec{}, {}));
}

TEST(ValidCorrection, BudgetExhaustionIsConservative) {
  const char *Src = "int main(int x) {\n"
                    "  int y = x * x;\n"
                    "  assert(y != 49);\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  BugAssistDriver Driver(*P, "main");
  // A one-conflict budget usually cannot decide; the answer must then be
  // false (never a spurious "valid").
  bool R = isValidCorrection(Driver.formula(), {InputValue::scalar(7)},
                             Spec{}, {2}, /*ConflictBudget=*/1);
  bool Unbudgeted = isValidCorrection(Driver.formula(),
                                      {InputValue::scalar(7)}, Spec{}, {2});
  EXPECT_TRUE(Unbudgeted);
  EXPECT_TRUE(R == false || R == Unbudgeted);
}
