//===- parser_test.cpp - Parser tests ------------------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/AstPrinter.h"

#include <gtest/gtest.h>

using namespace bugassist;

namespace {

std::unique_ptr<Program> parseOk(std::string_view Src) {
  DiagEngine Diags;
  auto P = parseProgram(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.render();
  return P;
}

void parseFails(std::string_view Src) {
  DiagEngine Diags;
  auto P = parseProgram(Src, Diags);
  EXPECT_TRUE(P == nullptr || Diags.hasErrors());
}

/// Fishes the first statement out of the only function.
const Stmt *firstStmt(const Program &P) {
  return P.functions().front()->body()->stmts().front().get();
}

} // namespace

TEST(Parser, EmptyProgram) {
  auto P = parseOk("");
  EXPECT_TRUE(P->functions().empty());
  EXPECT_TRUE(P->globals().empty());
}

TEST(Parser, GlobalDeclarations) {
  auto P = parseOk("int x; bool b = true; int arr[10]; int y = 5;");
  ASSERT_EQ(P->globals().size(), 4u);
  EXPECT_EQ(P->globals()[0]->name(), "x");
  EXPECT_TRUE(P->globals()[1]->type().isBool());
  EXPECT_TRUE(P->globals()[2]->type().isArray());
  EXPECT_EQ(P->globals()[2]->type().ArraySize, 10);
  EXPECT_TRUE(P->globals()[3]->init() != nullptr);
}

TEST(Parser, FunctionWithParams) {
  auto P = parseOk("int add(int a, int b) { return a + b; }");
  ASSERT_EQ(P->functions().size(), 1u);
  const FunctionDecl *F = P->functions()[0].get();
  EXPECT_EQ(F->name(), "add");
  ASSERT_EQ(F->params().size(), 2u);
  EXPECT_EQ(F->params()[1]->name(), "b");
  EXPECT_TRUE(F->returnType().isInt());
}

TEST(Parser, ArrayParameter) {
  auto P = parseOk("int first(int a[4]) { return a[0]; }");
  const FunctionDecl *F = P->functions()[0].get();
  ASSERT_EQ(F->params().size(), 1u);
  EXPECT_TRUE(F->params()[0]->type().isArray());
  EXPECT_EQ(F->params()[0]->type().ArraySize, 4);
}

TEST(Parser, PrecedenceMulOverAdd) {
  auto P = parseOk("int f(int x) { return 1 + x * 2; }");
  const auto *Ret = cast<ReturnStmt>(firstStmt(*P));
  EXPECT_EQ(printExpr(Ret->value()), "(1 + (x * 2))");
}

TEST(Parser, PrecedenceComparisonOverLogical) {
  auto P = parseOk("bool f(int x, int y) { return x < 1 && y > 2; }");
  const auto *Ret = cast<ReturnStmt>(firstStmt(*P));
  EXPECT_EQ(printExpr(Ret->value()), "((x < 1) && (y > 2))");
}

TEST(Parser, PrecedenceShiftVsAdd) {
  auto P = parseOk("int f(int x) { return x + 1 << 2; }");
  const auto *Ret = cast<ReturnStmt>(firstStmt(*P));
  // C precedence: addition binds tighter than shifts.
  EXPECT_EQ(printExpr(Ret->value()), "((x + 1) << 2)");
}

TEST(Parser, BitwisePrecedenceChain) {
  auto P = parseOk("int f(int x) { return x & 1 ^ x | 2; }");
  const auto *Ret = cast<ReturnStmt>(firstStmt(*P));
  EXPECT_EQ(printExpr(Ret->value()), "(((x & 1) ^ x) | 2)");
}

TEST(Parser, LeftAssociativity) {
  auto P = parseOk("int f(int x) { return x - 1 - 2; }");
  const auto *Ret = cast<ReturnStmt>(firstStmt(*P));
  EXPECT_EQ(printExpr(Ret->value()), "((x - 1) - 2)");
}

TEST(Parser, ConditionalExpressionRightAssoc) {
  auto P = parseOk(
      "int f(bool a, bool b) { return a ? 1 : b ? 2 : 3; }");
  const auto *Ret = cast<ReturnStmt>(firstStmt(*P));
  EXPECT_EQ(printExpr(Ret->value()), "(a ? 1 : (b ? 2 : 3))");
}

TEST(Parser, UnaryOperators) {
  auto P = parseOk("int f(int x, bool b) { return -x + (b ? ~x : x); }");
  const auto *Ret = cast<ReturnStmt>(firstStmt(*P));
  EXPECT_EQ(printExpr(Ret->value()), "(-(x) + (b ? ~(x) : x))");
}

TEST(Parser, IfElseChain) {
  auto P = parseOk("int f(int x) {"
                   "  if (x < 0) return 0;"
                   "  else if (x < 10) return 1;"
                   "  else return 2;"
                   "}");
  const auto *If = cast<IfStmt>(firstStmt(*P));
  EXPECT_TRUE(If->elseStmt() != nullptr);
  EXPECT_TRUE(isa<IfStmt>(If->elseStmt()));
}

TEST(Parser, DanglingElseBindsToInner) {
  auto P = parseOk("int f(bool a, bool b) {"
                   "  if (a) if (b) return 1; else return 2;"
                   "  return 3;"
                   "}");
  const auto *Outer = cast<IfStmt>(firstStmt(*P));
  EXPECT_TRUE(Outer->elseStmt() == nullptr);
  const auto *Inner = cast<IfStmt>(Outer->thenStmt());
  EXPECT_TRUE(Inner->elseStmt() != nullptr);
}

TEST(Parser, WhileLoop) {
  auto P = parseOk("int f(int n) { int i = 0; while (i < n) i = i + 1; return i; }");
  const auto &Stmts = P->functions()[0]->body()->stmts();
  EXPECT_TRUE(isa<WhileStmt>(Stmts[1].get()));
}

TEST(Parser, ForLoopDesugarsToWhile) {
  auto P = parseOk(
      "int f(int n) { int s = 0; int i; for (i = 0; i < n; i = i + 1) s = s + i; return s; }");
  const auto &Stmts = P->functions()[0]->body()->stmts();
  // for(...) becomes a block { init; while (cond) { body; step; } }.
  const auto *B = cast<BlockStmt>(Stmts[2].get());
  ASSERT_EQ(B->stmts().size(), 2u);
  EXPECT_TRUE(isa<AssignStmt>(B->stmts()[0].get()));
  const auto *W = cast<WhileStmt>(B->stmts()[1].get());
  const auto *Body = cast<BlockStmt>(W->body());
  ASSERT_EQ(Body->stmts().size(), 2u);
}

TEST(Parser, ArrayAssignment) {
  auto P = parseOk("int g(int a[3], int i) { a[i + 1] = 7; return a[i]; }");
  const auto *A = cast<AssignStmt>(firstStmt(*P));
  EXPECT_EQ(A->target(), "a");
  EXPECT_TRUE(A->index() != nullptr);
}

TEST(Parser, AssertAssume) {
  auto P = parseOk("void f(int x) { assume(x > 0); assert(x != 0); }");
  const auto &Stmts = P->functions()[0]->body()->stmts();
  EXPECT_TRUE(isa<AssumeStmt>(Stmts[0].get()));
  EXPECT_TRUE(isa<AssertStmt>(Stmts[1].get()));
}

TEST(Parser, CallStatementAndExpression) {
  auto P = parseOk("void init() { }"
                   "int get(int i) { return i; }"
                   "int f() { init(); return get(3) + get(4); }");
  ASSERT_EQ(P->functions().size(), 3u);
  const auto &Stmts = P->functions()[2]->body()->stmts();
  EXPECT_TRUE(isa<ExprStmt>(Stmts[0].get()));
}

TEST(Parser, SyntaxErrors) {
  parseFails("int f( { }");
  parseFails("int f() { return 1 }");   // missing semicolon
  parseFails("int f() { x = ; }");      // missing rhs
  parseFails("int f() { if x) return 1; }");
  parseFails("int 3x;");
  parseFails("garbage");
}

TEST(Parser, RoundTripThroughPrinter) {
  const char *Src = "int g;\n"
                    "int f(int x, bool b) {\n"
                    "  int y = x + 1;\n"
                    "  if (b) y = y * 2; else y = 0;\n"
                    "  while (y > 0) y = y - 1;\n"
                    "  return y;\n"
                    "}\n";
  auto P1 = parseOk(Src);
  std::string Printed = printProgram(*P1);
  auto P2 = parseOk(Printed);
  // The printer's output must itself parse and re-print identically.
  EXPECT_EQ(printProgram(*P2), Printed);
}

TEST(Parser, CloneMatchesOriginal) {
  const char *Src = "int a[5];\n"
                    "int f(int x) {\n"
                    "  a[x] = x * 3;\n"
                    "  assert(a[x] >= 0);\n"
                    "  return x < 2 ? a[0] : a[1];\n"
                    "}\n";
  auto P = parseOk(Src);
  auto Q = cloneProgram(*P);
  EXPECT_EQ(printProgram(*P), printProgram(*Q));
}
