//===- cnf_test.cpp - CNF layer unit tests -----------------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "cnf/Cnf.h"
#include "cnf/DimacsWriter.h"

#include <gtest/gtest.h>

using namespace bugassist;

TEST(Lit, EncodingRoundTrips) {
  Lit P = mkLit(7);
  EXPECT_EQ(P.var(), 7);
  EXPECT_FALSE(P.negated());
  EXPECT_TRUE((~P).negated());
  EXPECT_EQ((~P).var(), 7);
  EXPECT_EQ(~~P, P);
  EXPECT_NE(P, ~P);
}

TEST(Lit, DimacsRendering) {
  EXPECT_EQ(mkLit(0).str(), "1");
  EXPECT_EQ((~mkLit(0)).str(), "-1");
  EXPECT_EQ(mkLit(41).str(), "42");
  EXPECT_EQ(mkLit(41, true).str(), "-42");
}

TEST(Lit, AdjacentCodes) {
  // Positive and negative literal of one var differ only in the low bit,
  // the invariant the solver's watch indexing relies on.
  Lit P = mkLit(3);
  EXPECT_EQ(P.code() ^ 1, (~P).code());
}

TEST(Lit, LBoolNegation) {
  EXPECT_EQ(lboolNeg(LBool::True), LBool::False);
  EXPECT_EQ(lboolNeg(LBool::False), LBool::True);
  EXPECT_EQ(lboolNeg(LBool::Undef), LBool::Undef);
}

TEST(CnfFormula, FreshVariables) {
  CnfFormula F;
  EXPECT_EQ(F.numVars(), 0);
  Var A = F.newVar();
  Var B = F.newVar();
  EXPECT_NE(A, B);
  EXPECT_EQ(F.numVars(), 2);
  Var First = F.newVars(5);
  EXPECT_EQ(First, 2);
  EXPECT_EQ(F.numVars(), 7);
}

TEST(CnfFormula, GroupedClausesCarryGuard) {
  CnfFormula F;
  Var X = F.newVar();
  GroupId G = F.newGroup(/*Line=*/42, "x := 1");
  F.addGroupedClause(G, {mkLit(X)});

  ASSERT_EQ(F.numClauses(), 1u);
  const Clause &C = F.hardClauses()[0];
  ASSERT_EQ(C.size(), 2u);
  EXPECT_EQ(C[0], mkLit(X));
  EXPECT_EQ(C[1], mkLit(F.group(G).Selector, true));
  EXPECT_EQ(F.group(G).Line, 42u);
  EXPECT_EQ(F.group(G).Label, "x := 1");
}

TEST(CnfFormula, SelectorLookup) {
  CnfFormula F;
  GroupId G1 = F.newGroup(1);
  GroupId G2 = F.newGroup(2);
  EXPECT_EQ(F.groupOfSelector(F.group(G1).Selector), G1);
  EXPECT_EQ(F.groupOfSelector(F.group(G2).Selector), G2);
  EXPECT_EQ(F.groupOfSelector(12345), NoGroup);
  EXPECT_EQ(F.selectorLit(G1), mkLit(F.group(G1).Selector));
}

TEST(CnfFormula, GroupWeightsAndUnwindings) {
  CnfFormula F;
  GroupId G = F.newGroup(7, "loop body", /*Weight=*/9, /*Unwinding=*/3);
  EXPECT_EQ(F.group(G).Weight, 9u);
  EXPECT_EQ(F.group(G).Unwinding, 3u);
}

TEST(CnfFormula, LiteralCount) {
  CnfFormula F;
  Var A = F.newVar(), B = F.newVar();
  F.addClause(mkLit(A));
  F.addClause(mkLit(A), mkLit(B));
  EXPECT_EQ(F.literalCount(), 3u);
}

TEST(DimacsWriter, PlainCnf) {
  CnfFormula F;
  Var A = F.newVar(), B = F.newVar();
  F.addClause(mkLit(A), ~mkLit(B));
  F.addClause(~mkLit(A));
  EXPECT_EQ(writeDimacs(F), "p cnf 2 2\n1 -2 0\n-1 0\n");
}

TEST(DimacsWriter, WcnfHardAndSoft) {
  CnfFormula F;
  Var X = F.newVar();
  GroupId G = F.newGroup(1, "stmt", /*Weight=*/3);
  F.addGroupedClause(G, {mkLit(X)});
  std::string W = writeWcnf(F);
  // Top weight = 3 + 1 = 4; one hard clause (x \/ ~sel), one soft (sel).
  EXPECT_EQ(W, "p wcnf 2 2 4\n4 1 -2 0\n3 2 0\n");
}

TEST(DimacsWriter, WcnfTopExceedsSoftSum) {
  CnfFormula F;
  F.newGroup(1, "", 5);
  F.newGroup(2, "", 7);
  std::string W = writeWcnf(F);
  EXPECT_NE(W.find("p wcnf 2 2 13"), std::string::npos);
}
