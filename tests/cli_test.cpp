//===- cli_test.cpp - bugassist CLI end-to-end tests --------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
// Drives the installed `bugassist` binary and holds it to the PR's
// acceptance bar: `bugassist localize` on a TCAS mutant reproduces the
// library-driver diagnosis byte for byte at every --threads width, and
// the input/report serializations of core/Pipeline.h are exactly what the
// CLI prints. Also covers the input-vector syntax and the sat subcommand.
//
//===----------------------------------------------------------------------===//

#include "CliTestUtils.h"
#include "core/Pipeline.h"
#include "programs/Tcas.h"
#include "programs/TcasMutants.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <unistd.h>

using namespace bugassist;

using clitest::Cli;
using clitest::exitStatus;
using clitest::Instances;
using clitest::runCommand;

namespace {

/// Writes \p Text to a fresh temp file and returns its path.
std::string writeTempFile(const std::string &Text) {
  char Path[] = "/tmp/bugassist_cli_XXXXXX";
  int Fd = mkstemp(Path);
  EXPECT_GE(Fd, 0);
  EXPECT_EQ(write(Fd, Text.data(), Text.size()),
            static_cast<ssize_t>(Text.size()));
  close(Fd);
  return Path;
}

} // namespace

// --- input-vector syntax ------------------------------------------------------

TEST(InputVector, RendersAndParsesScalarsAndArrays) {
  InputVector In = {InputValue::scalar(3), InputValue::array({1, -2, 4}),
                    InputValue::scalar(-7)};
  std::string Text = renderInputVector(In);
  EXPECT_EQ(Text, "3,[1,-2,4],-7");
  std::string Error;
  auto Back = parseInputVector(Text, Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(*Back, In);
}

TEST(InputVector, ParsesEmptyAndWhitespace) {
  std::string Error;
  auto Empty = parseInputVector("", Error);
  ASSERT_TRUE(Empty.has_value());
  EXPECT_TRUE(Empty->empty());

  auto Spaced = parseInputVector(" 1 , [ 2 , 3 ] ", Error);
  ASSERT_TRUE(Spaced.has_value()) << Error;
  ASSERT_EQ(Spaced->size(), 2u);
  EXPECT_EQ((*Spaced)[1].Array, (std::vector<int64_t>{2, 3}));

  auto EmptyArray = parseInputVector("[]", Error);
  ASSERT_TRUE(EmptyArray.has_value()) << Error;
  EXPECT_TRUE((*EmptyArray)[0].Array.empty());
}

TEST(InputVector, RejectsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(parseInputVector("1,,2", Error).has_value());
  EXPECT_FALSE(parseInputVector("[1,2", Error).has_value());
  EXPECT_FALSE(parseInputVector("abc", Error).has_value());
  EXPECT_FALSE(parseInputVector("1 2", Error).has_value());
  EXPECT_FALSE(parseInputVector("[1,x]", Error).has_value());
}

// --- localize: byte-for-byte parity with the library driver -------------------

TEST(BugassistCli, LocalizeMatchesLibraryDriverAtEveryThreadCount) {
  // TCAS v2, the Figure 2 fault. Find one failing test the library way.
  DiagEngine Diags;
  auto Golden = parseAndAnalyze(tcasSource(), Diags);
  auto Faulty = parseAndAnalyze(tcasMutants()[1].Source, Diags);
  ASSERT_TRUE(Golden && Faulty) << Diags.render();
  FailingTests Failing =
      segregateFailingTests(*Golden, *Faulty, tcasTestPool(1600), "main",
                            tcasExecOptions(), /*MaxTests=*/1);
  ASSERT_EQ(Failing.Inputs.size(), 1u);

  // The library-driver diagnosis through the pipeline seam.
  PipelineRequest R;
  R.Unroll = tcasUnrollOptions();
  R.Input = Failing.Inputs[0];
  R.GoldenReturn = Failing.Goldens[0];
  R.CheckObligations = false;
  R.Localize.MaxDiagnoses = 24;
  PipelineResult Lib = runLocalizePipeline(*Faulty, R);
  ASSERT_EQ(Lib.Status, PipelineStatus::Localized);
  ASSERT_FALSE(Lib.Report.Diagnoses.empty());
  std::string Expected = "failing input: " +
                         renderInputVector(Lib.FailingInput) + "\n" +
                         renderLocalizationReport(Lib.Report);

  // The same run through the CLI, at several portfolio widths. HardLines
  // 69-84 is exactly tcasUnrollOptions()'s harness pinning.
  std::string Source = writeTempFile(tcasMutants()[1].Source);
  std::string Base =
      Cli + " localize " + Source + " --input \"" +
      renderInputVector(Failing.Inputs[0]) + "\" --golden " +
      std::to_string(Failing.Goldens[0]) +
      " --no-obligations --no-bounds --bitwidth 16 --hard-lines 69-84"
      " --max-diagnoses 24";
  std::string First;
  for (size_t Threads : {1u, 2u, 4u}) {
    int Exit = 0;
    std::string Out =
        runCommand(Base + " --threads " + std::to_string(Threads), Exit);
    EXPECT_EQ(Exit, 0);
    EXPECT_EQ(Out, Expected) << "CLI diverged at --threads " << Threads;
    if (First.empty())
      First = Out;
    else
      EXPECT_EQ(Out, First) << "thread-count nondeterminism at " << Threads;
  }

  // The injected fault line must be among the suspects (Detect# = hit).
  for (uint32_t BugLine : tcasMutants()[1].BugLines)
    EXPECT_NE(First.find(" " + std::to_string(BugLine)), std::string::npos);

  std::remove(Source.c_str());
}

TEST(BugassistCli, LocalizeJsonContainsReport) {
  std::string Prog = writeTempFile("int Array[3];\n"
                                   "int main(int index) {\n"
                                   "  if (index != 1)\n"
                                   "    index = 2;\n"
                                   "  else\n"
                                   "    index = index + 2;\n"
                                   "  int i = index;\n"
                                   "  assert(i >= 0 && i < 3);\n"
                                   "  return Array[i];\n"
                                   "}\n");
  int Exit = 0;
  std::string Out = runCommand(Cli + " localize " + Prog + " --json", Exit);
  EXPECT_EQ(Exit, 0);
  EXPECT_NE(Out.find("\"input\": \"1\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"suspect_lines\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"exhausted\": true"), std::string::npos) << Out;
  std::remove(Prog.c_str());
}

TEST(BugassistCli, LocalizeRejectsNonFailingInput) {
  std::string Prog = writeTempFile("int main(int x) {\n"
                                   "  assert(x >= 0 || x < 0);\n"
                                   "  return x;\n"
                                   "}\n");
  int Exit = 0;
  runCommand(Cli + " localize " + Prog + " --input \"5\" 2>/dev/null", Exit);
  EXPECT_NE(Exit, 0); // nothing to localize: the spec holds
  std::remove(Prog.c_str());
}

// --- sat / dump-tcas ----------------------------------------------------------

TEST(BugassistCli, SatDecidesCheckedInInstances) {
  int Exit = 0;
  std::string Out =
      runCommand(Cli + " sat " + Instances + "/mini.cnf", Exit);
  EXPECT_EQ(Exit, 0);
  EXPECT_NE(Out.find("s SATISFIABLE\n"), std::string::npos) << Out;

  Out = runCommand(Cli + " sat " + Instances + "/mini_unsat.cnf --threads 2",
                   Exit);
  EXPECT_EQ(Exit, 0);
  EXPECT_NE(Out.find("s UNSATISFIABLE\n"), std::string::npos) << Out;
}

// --- resource budgets & the exit-code contract --------------------------------
//
// Documented contract: 0 complete, 1 input/usage error, 2 budget
// exhausted (best-so-far result printed).

namespace {

/// DIMACS CNF text of PHP(Holes + 1, Holes) -- UNSAT, and hopeless to
/// refute within a tiny budget for Holes >= 9.
std::string pigeonholeCnf(int Holes) {
  int Pigeons = Holes + 1;
  auto VarOf = [&](int P, int H) { return P * Holes + H + 1; };
  std::string Text;
  int NumClauses = Pigeons + Holes * (Pigeons * (Pigeons - 1) / 2);
  Text += "p cnf " + std::to_string(Pigeons * Holes) + " " +
          std::to_string(NumClauses) + "\n";
  for (int P = 0; P < Pigeons; ++P) {
    for (int H = 0; H < Holes; ++H)
      Text += std::to_string(VarOf(P, H)) + " ";
    Text += "0\n";
  }
  for (int H = 0; H < Holes; ++H)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        Text += "-" + std::to_string(VarOf(P1, H)) + " -" +
                std::to_string(VarOf(P2, H)) + " 0\n";
  return Text;
}

} // namespace

TEST(BugassistCli, BadBudgetFlagValuesExitOneWithNoOutput) {
  const std::string Wcnf = Instances + "/weighted.wcnf";
  for (const std::string &Flags :
       {std::string("--timeout 0"), std::string("--timeout abc"),
        std::string("--timeout -1"), std::string("--max-conflicts -1"),
        std::string("--max-conflicts notanumber"),
        std::string("--max-memory-mb 0"), std::string("--timeout")}) {
    int Exit = 0;
    std::string Out = runCommand(
        Cli + " maxsat " + Wcnf + " " + Flags + " 2>/dev/null", Exit);
    EXPECT_EQ(exitStatus(Exit), 1) << "flags: " << Flags;
    EXPECT_TRUE(Out.empty()) << "partial stdout for flags: " << Flags;
  }
}

TEST(BugassistCli, SatBudgetExhaustionExitsTwoWithUnknown) {
  std::string Cnf = writeTempFile(pigeonholeCnf(9));
  for (int Threads : {1, 2}) {
    int Exit = 0;
    std::string Out =
        runCommand(Cli + " sat " + Cnf + " --timeout 0.05 --threads " +
                       std::to_string(Threads),
                   Exit);
    EXPECT_EQ(exitStatus(Exit), 2) << "threads " << Threads;
    EXPECT_NE(Out.find("s UNKNOWN\n"), std::string::npos) << Out;
  }
  // The same instance without a budget still exits 0 on easy inputs: the
  // contract is about exhaustion, not about the flags being present.
  int Exit = 0;
  std::string Out = runCommand(
      Cli + " sat " + Instances + "/mini.cnf --timeout 30", Exit);
  EXPECT_EQ(exitStatus(Exit), 0);
  EXPECT_NE(Out.find("s SATISFIABLE\n"), std::string::npos) << Out;
  std::remove(Cnf.c_str());
}

TEST(BugassistCli, MaxsatBudgetExhaustionIsAnytime) {
  // budget/budget_hard.wcnf is soft-PHP(10, 9): optimum 1, refutation hopeless.
  // A tiny deadline must exit 2 and still print an o-line upper bound
  // with its witnessing v-line, at every width.
  for (int Threads : {1, 2, 4}) {
    int Exit = 0;
    std::string Out =
        runCommand(Cli + " maxsat " + Instances +
                       "/budget/budget_hard.wcnf --timeout 0.05 --threads " +
                       std::to_string(Threads),
                   Exit);
    EXPECT_EQ(exitStatus(Exit), 2) << "threads " << Threads;
    EXPECT_NE(Out.find("\no "), std::string::npos)
        << "no anytime upper bound, threads " << Threads << "\n" << Out;
    EXPECT_NE(Out.find("s UNKNOWN\n"), std::string::npos) << Out;
    EXPECT_NE(Out.find("\nv "), std::string::npos)
        << "no witness model, threads " << Threads << "\n" << Out;
  }
  // A generous budget that never trips leaves complete runs at exit 0.
  int Exit = 0;
  std::string Out = runCommand(
      Cli + " maxsat " + Instances + "/weighted.wcnf --timeout 30", Exit);
  EXPECT_EQ(exitStatus(Exit), 0);
  EXPECT_NE(Out.find("o 2\ns OPTIMUM FOUND\n"), std::string::npos) << Out;
}

TEST(BugassistCli, LocalizePartialReportIdenticalAcrossWidths) {
  // A microsecond deadline is already expired by the first budget poll in
  // every worker, so the INCOMPLETE report deterministically carries zero
  // diagnoses -- which is exactly what makes it byte-identical at every
  // portfolio width. (A conflict cap would NOT do: small rounds can
  // complete between the amortized polls, differently per width.)
  DiagEngine Diags;
  auto Golden = parseAndAnalyze(tcasSource(), Diags);
  auto Faulty = parseAndAnalyze(tcasMutants()[1].Source, Diags);
  ASSERT_TRUE(Golden && Faulty) << Diags.render();
  FailingTests Failing =
      segregateFailingTests(*Golden, *Faulty, tcasTestPool(1600), "main",
                            tcasExecOptions(), /*MaxTests=*/1);
  ASSERT_EQ(Failing.Inputs.size(), 1u);

  std::string Source = writeTempFile(tcasMutants()[1].Source);
  std::string Base =
      Cli + " localize " + Source + " --input \"" +
      renderInputVector(Failing.Inputs[0]) + "\" --golden " +
      std::to_string(Failing.Goldens[0]) +
      " --no-obligations --no-bounds --bitwidth 16 --hard-lines 69-84"
      " --timeout 0.000001";
  std::string First;
  for (size_t Threads : {1u, 2u, 4u}) {
    int Exit = 0;
    std::string Out =
        runCommand(Base + " --threads " + std::to_string(Threads), Exit);
    EXPECT_EQ(exitStatus(Exit), 2) << "threads " << Threads;
    EXPECT_NE(Out.find("INCOMPLETE: resource budget exhausted"),
              std::string::npos)
        << Out;
    if (First.empty())
      First = Out;
    else
      EXPECT_EQ(Out, First)
          << "partial report diverged at --threads " << Threads;
  }
  std::remove(Source.c_str());
}

TEST(BugassistCli, DumpTcasRoundTripsThroughTheParser) {
  int Exit = 0;
  std::string Out = runCommand(Cli + " dump-tcas 2", Exit);
  EXPECT_EQ(Exit, 0);
  EXPECT_EQ(Out, tcasMutants()[1].Source);

  Out = runCommand(Cli + " dump-tcas 0", Exit);
  EXPECT_EQ(Exit, 0);
  EXPECT_EQ(Out, tcasSource());
}

// --- repair -------------------------------------------------------------------

namespace {

/// `--input "..." --golden N` pairs for up to \p MaxTests failing tests of
/// a checked-in TCAS mutant, segregated from the session pool, followed
/// by up to \p MaxPassing passing pairs as regression witnesses (the
/// first input drives localization; the rest only screen candidates).
std::string tcasRepairArgs(size_t MutantIdx, size_t MaxTests,
                           size_t MaxPassing = 0) {
  DiagEngine Diags;
  auto Golden = parseAndAnalyze(tcasSource(), Diags);
  auto Faulty = parseAndAnalyze(tcasMutants()[MutantIdx].Source, Diags);
  EXPECT_TRUE(Golden && Faulty) << Diags.render();
  FailingTests Failing =
      segregateFailingTests(*Golden, *Faulty, tcasTestPool(300), "main",
                            tcasExecOptions(), MaxTests, MaxPassing);
  EXPECT_FALSE(Failing.Inputs.empty());
  std::string Args;
  for (size_t I = 0; I < Failing.Inputs.size(); ++I)
    Args += " --input \"" + renderInputVector(Failing.Inputs[I]) +
            "\" --golden " + std::to_string(Failing.Goldens[I]);
  for (size_t I = 0; I < Failing.PassingInputs.size(); ++I)
    Args += " --input \"" + renderInputVector(Failing.PassingInputs[I]) +
            "\" --golden " + std::to_string(Failing.PassingGoldens[I]);
  return Args;
}

} // namespace

TEST(BugassistCli, RepairTcasV1OperatorSwap) {
  // v1 weakens a `<=` boundary to `<`; `bugassist repair` must propose
  // the swap back on the recorded fault line.
  std::string Source = writeTempFile(tcasMutants()[0].Source);
  int Exit = 0;
  // v1 fails on almost nothing (one pool test), so passing regression
  // witnesses carry the screen against imposter fixes on correlated
  // branch conditions.
  std::string Out = runCommand(
      Cli + " repair " + Source + tcasRepairArgs(0, 24, /*MaxPassing=*/64) +
          " --no-obligations --no-bounds --bitwidth 16 --hard-lines 69-84",
      Exit);
  EXPECT_EQ(exitStatus(Exit), 0);
  std::string Expected = "repair: line " +
                         std::to_string(tcasMutants()[0].BugLines[0]) +
                         ": '<' -> '<='";
  EXPECT_NE(Out.find(Expected), std::string::npos) << Out;
  EXPECT_NE(Out.find("fixed program:\n"), std::string::npos) << Out;
  std::remove(Source.c_str());
}

TEST(BugassistCli, RepairTcasV5OffByOneJson) {
  // v5 assigns advisory code 2 where 1 belongs: the paper's kappa-1 fix,
  // through the --json schema.
  std::string Source = writeTempFile(tcasMutants()[4].Source);
  int Exit = 0;
  std::string Out = runCommand(
      Cli + " repair " + Source + tcasRepairArgs(4, 6) +
          " --no-obligations --no-bounds --bitwidth 16 --hard-lines 69-84"
          " --json",
      Exit);
  EXPECT_EQ(exitStatus(Exit), 0);
  EXPECT_NE(Out.find("\"found\": true"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"line\": " +
                     std::to_string(tcasMutants()[4].BugLines[0])),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("\"fix\": \"constant 2 -> 1\""), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("\"suspect_lines\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"truncated\": false"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"stats\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"candidates_tried\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"fixed_program\""), std::string::npos) << Out;
  std::remove(Source.c_str());
}

TEST(BugassistCli, RepairExitCodeContract) {
  // 1: usage error (no failing input given).
  std::string Prog = writeTempFile("int main(int x) {\n"
                                   "  assert(x == 0);\n"
                                   "  return x;\n"
                                   "}\n");
  int Exit = 0;
  runCommand(Cli + " repair " + Prog + " 2>/dev/null", Exit);
  EXPECT_EQ(exitStatus(Exit), 1);

  // 1: the input does not fail, so there is nothing to repair.
  runCommand(Cli + " repair " + Prog + " --input \"0\" 2>/dev/null", Exit);
  EXPECT_EQ(exitStatus(Exit), 1);
  std::remove(Prog.c_str());

  // 2: candidate budget truncated the search without a decided answer.
  std::string Hard = writeTempFile("int main(int x) {\n"
                                   "  assume(x >= 0 && x <= 7);\n"
                                   "  int y = 0;\n"
                                   "  assert(y == x * x);\n"
                                   "  return y;\n"
                                   "}\n");
  std::string Out = runCommand(
      Cli + " repair " + Hard + " --input \"2\" --max-candidates 1", Exit);
  EXPECT_EQ(exitStatus(Exit), 2);
  EXPECT_NE(Out.find("repair: NONE within candidate budget"),
            std::string::npos)
      << Out;
  std::remove(Hard.c_str());
}

// --- fuzz ---------------------------------------------------------------------

TEST(BugassistCli, FuzzTcasScorecardIsDeterministicAndMismatchFree) {
  int Exit = 0;
  std::string Cmd = Cli + " fuzz tcas --seed 1 --count 12 --pool 200";
  std::string Out = runCommand(Cmd, Exit);
  EXPECT_EQ(exitStatus(Exit), 0) << Out;
  EXPECT_NE(Out.find("\"subject\": \"tcas\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"generated\": 12"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"total\""), std::string::npos) << Out;
  // Zero thread-width / preprocess mismatches, by contract.
  EXPECT_EQ(Out.find("\"mismatches\": 1"), std::string::npos) << Out;

  std::string Again = runCommand(Cmd, Exit);
  EXPECT_EQ(Out, Again) << "scorecard must be byte-identical across runs";
}

TEST(BugassistCli, FuzzRejectsUnknownClass) {
  int Exit = 0;
  runCommand(Cli + " fuzz tcas --classes bogus 2>/dev/null", Exit);
  EXPECT_EQ(exitStatus(Exit), 1);
}

TEST(BugassistCli, FuzzRunsOnAFileSubject) {
  std::string Prog = writeTempFile("int main(int x) {\n"
                                   "  int y;\n"
                                   "  y = 0;\n"
                                   "  if (x < 5) {\n"
                                   "    y = 1;\n"
                                   "  }\n"
                                   "  return y;\n"
                                   "}\n");
  int Exit = 0;
  std::string Out = runCommand(
      Cli + " fuzz " + Prog + " --seed 3 --count 8 --pool 32", Exit);
  EXPECT_EQ(exitStatus(Exit), 0) << Out;
  EXPECT_NE(Out.find("\"generated\": 8"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("\"mismatches\": 1"), std::string::npos) << Out;
  std::remove(Prog.c_str());
}
