//===- CliTestUtils.h - shared helpers for CLI-driving tests ----*- C++ -*-===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The popen helper and build-time paths shared by the test suites that
/// exec the `bugassist` binary (cli_test, dimacs_test). CMake injects
/// BUGASSIST_CLI_PATH / BUGASSIST_INSTANCE_DIR into every test target.
///
//===----------------------------------------------------------------------===//

#ifndef BUGASSIST_TESTS_CLITESTUTILS_H
#define BUGASSIST_TESTS_CLITESTUTILS_H

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <sys/wait.h>

namespace bugassist {
namespace clitest {

inline const std::string Cli = BUGASSIST_CLI_PATH;
inline const std::string Instances = BUGASSIST_INSTANCE_DIR;

/// Runs \p Cmd through the shell, captures stdout, and stores the raw
/// pclose() status (0 on a clean exit) in \p ExitCode.
inline std::string runCommand(const std::string &Cmd, int &ExitCode) {
  std::string Out;
  std::FILE *P = popen(Cmd.c_str(), "r");
  EXPECT_NE(P, nullptr) << "popen failed for: " << Cmd;
  if (!P) {
    ExitCode = -1;
    return Out;
  }
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  ExitCode = pclose(P);
  return Out;
}

/// The program's actual exit status out of a raw pclose()/runCommand
/// status (-1 when the program did not exit normally). Use this to assert
/// the exact documented exit codes (0 complete / 1 input error / 2 budget
/// exhausted) rather than just zero vs. nonzero.
inline int exitStatus(int RawStatus) {
  return WIFEXITED(RawStatus) ? WEXITSTATUS(RawStatus) : -1;
}

} // namespace clitest
} // namespace bugassist

#endif // BUGASSIST_TESTS_CLITESTUTILS_H
