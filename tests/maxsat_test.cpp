//===- maxsat_test.cpp - Partial MaxSAT unit & property tests ----------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "maxsat/MaxSat.h"

#include "maxsat/Cardinality.h"
#include "maxsat/ReferenceMaxSat.h"
#include "sat/Solver.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace bugassist;

namespace {

/// Exhaustive weighted partial MaxSAT oracle for small NumVars.
/// \returns minimal falsified-soft weight over models of Hard, or
/// UINT64_MAX when Hard is unsatisfiable.
uint64_t bruteForceOptimum(const MaxSatInstance &Inst) {
  uint64_t Best = UINT64_MAX;
  for (uint64_t Mask = 0; Mask < (1ull << Inst.NumVars); ++Mask) {
    auto LitTrue = [&](Lit L) {
      bool V = (Mask >> L.var()) & 1;
      return V != L.negated();
    };
    bool HardOk = true;
    for (const Clause &C : Inst.Hard) {
      bool Sat = false;
      for (Lit L : C)
        if (LitTrue(L)) {
          Sat = true;
          break;
        }
      if (!Sat) {
        HardOk = false;
        break;
      }
    }
    if (!HardOk)
      continue;
    uint64_t Cost = 0;
    for (const SoftClause &S : Inst.Soft) {
      bool Sat = false;
      for (Lit L : S.Lits)
        if (LitTrue(L)) {
          Sat = true;
          break;
        }
      if (!Sat)
        Cost += S.Weight;
    }
    Best = std::min(Best, Cost);
  }
  return Best;
}

MaxSatInstance randomInstance(Rng &R, int NumVars, int NumHard, int NumSoft,
                              bool Weighted) {
  MaxSatInstance Inst;
  Inst.NumVars = NumVars;
  auto RandomClause = [&](int Len) {
    Clause C;
    std::set<Var> Used;
    while (static_cast<int>(C.size()) < Len) {
      Var V = static_cast<Var>(R.below(NumVars));
      if (!Used.insert(V).second)
        continue;
      C.push_back(mkLit(V, R.chance(1, 2)));
    }
    return C;
  };
  for (int I = 0; I < NumHard; ++I)
    Inst.Hard.push_back(RandomClause(static_cast<int>(R.range(1, 3))));
  for (int I = 0; I < NumSoft; ++I) {
    SoftClause S;
    S.Lits = RandomClause(static_cast<int>(R.range(1, 2)));
    S.Weight = Weighted ? static_cast<uint64_t>(R.range(1, 5)) : 1;
    Inst.Soft.push_back(std::move(S));
  }
  return Inst;
}

} // namespace

// --- cardinality encodings --------------------------------------------------

namespace {

/// Counts models of the clauses produced by an encoder, projected onto the
/// first NumVars variables, that satisfy a predicate.
template <typename Pred>
void forEachProjectedModel(int NumVars,
                           const std::vector<Clause> &EncoderClauses,
                           int TotalVars, Pred &&Check) {
  for (uint64_t Mask = 0; Mask < (1ull << NumVars); ++Mask) {
    // The encoding must be *satisfiable consistently with Mask* iff the
    // constraint holds for Mask. Use the solver with assumptions.
    Solver S;
    S.ensureVars(TotalVars);
    bool Ok = true;
    for (const Clause &C : EncoderClauses)
      Ok = Ok && S.addClause(C);
    std::vector<Lit> Assumps;
    for (int V = 0; V < NumVars; ++V)
      Assumps.push_back(mkLit(V, !((Mask >> V) & 1)));
    bool Sat = Ok && S.solve(Assumps) == LBool::True;
    Check(Mask, Sat);
  }
}

} // namespace

TEST(Cardinality, AtMostOnePairwise) {
  for (int N : {2, 3, 4, 5}) {
    std::vector<Clause> Out;
    int NextVar = N;
    ClauseSink Sink{[&Out](Clause C) { Out.push_back(std::move(C)); },
                    [&NextVar]() { return NextVar++; }};
    std::vector<Lit> Ls;
    for (int I = 0; I < N; ++I)
      Ls.push_back(mkLit(I));
    encodeAtMostOne(Ls, Sink);
    forEachProjectedModel(N, Out, NextVar, [&](uint64_t Mask, bool Sat) {
      EXPECT_EQ(Sat, __builtin_popcountll(Mask) <= 1)
          << "n=" << N << " mask=" << Mask;
    });
  }
}

TEST(Cardinality, AtMostOneLadder) {
  for (int N : {6, 8, 10}) {
    std::vector<Clause> Out;
    int NextVar = N;
    ClauseSink Sink{[&Out](Clause C) { Out.push_back(std::move(C)); },
                    [&NextVar]() { return NextVar++; }};
    std::vector<Lit> Ls;
    for (int I = 0; I < N; ++I)
      Ls.push_back(mkLit(I));
    encodeAtMostOne(Ls, Sink);
    forEachProjectedModel(N, Out, NextVar, [&](uint64_t Mask, bool Sat) {
      EXPECT_EQ(Sat, __builtin_popcountll(Mask) <= 1)
          << "n=" << N << " mask=" << Mask;
    });
  }
}

TEST(Cardinality, ExactlyOne) {
  for (int N : {1, 3, 7}) {
    std::vector<Clause> Out;
    int NextVar = N;
    ClauseSink Sink{[&Out](Clause C) { Out.push_back(std::move(C)); },
                    [&NextVar]() { return NextVar++; }};
    std::vector<Lit> Ls;
    for (int I = 0; I < N; ++I)
      Ls.push_back(mkLit(I));
    encodeExactlyOne(Ls, Sink);
    forEachProjectedModel(N, Out, NextVar, [&](uint64_t Mask, bool Sat) {
      EXPECT_EQ(Sat, __builtin_popcountll(Mask) == 1)
          << "n=" << N << " mask=" << Mask;
    });
  }
}

TEST(Cardinality, PbLeqUnitWeightsMatchesCardinality) {
  const int N = 6;
  for (uint64_t Bound : {0ull, 1ull, 2ull, 3ull, 5ull, 6ull}) {
    std::vector<Clause> Out;
    int NextVar = N;
    ClauseSink Sink{[&Out](Clause C) { Out.push_back(std::move(C)); },
                    [&NextVar]() { return NextVar++; }};
    std::vector<Lit> Ls;
    std::vector<uint64_t> Ws;
    for (int I = 0; I < N; ++I) {
      Ls.push_back(mkLit(I));
      Ws.push_back(1);
    }
    encodePbLeq(Ls, Ws, Bound, Sink);
    forEachProjectedModel(N, Out, NextVar, [&](uint64_t Mask, bool Sat) {
      EXPECT_EQ(Sat, static_cast<uint64_t>(__builtin_popcountll(Mask)) <=
                         Bound)
          << "bound=" << Bound << " mask=" << Mask;
    });
  }
}

TEST(Cardinality, PbLeqGeneralWeights) {
  // weights {3, 1, 4, 2, 5}, several bounds, exhaustive check.
  const std::vector<uint64_t> Ws = {3, 1, 4, 2, 5};
  const int N = static_cast<int>(Ws.size());
  for (uint64_t Bound : {0ull, 2ull, 4ull, 7ull, 10ull, 14ull, 15ull}) {
    std::vector<Clause> Out;
    int NextVar = N;
    ClauseSink Sink{[&Out](Clause C) { Out.push_back(std::move(C)); },
                    [&NextVar]() { return NextVar++; }};
    std::vector<Lit> Ls;
    for (int I = 0; I < N; ++I)
      Ls.push_back(mkLit(I));
    encodePbLeq(Ls, Ws, Bound, Sink);
    forEachProjectedModel(N, Out, NextVar, [&](uint64_t Mask, bool Sat) {
      uint64_t Sum = 0;
      for (int I = 0; I < N; ++I)
        if ((Mask >> I) & 1)
          Sum += Ws[I];
      EXPECT_EQ(Sat, Sum <= Bound) << "bound=" << Bound << " mask=" << Mask;
    });
  }
}

// --- MaxSAT solvers -----------------------------------------------------------

TEST(FuMalik, AllSoftSatisfiable) {
  MaxSatInstance Inst;
  Inst.NumVars = 2;
  Inst.Soft.push_back({{mkLit(0)}, 1});
  Inst.Soft.push_back({{mkLit(1)}, 1});
  auto R = solveFuMalik(Inst);
  ASSERT_EQ(R.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(R.Cost, 0u);
  EXPECT_TRUE(R.FalsifiedSoft.empty());
}

TEST(FuMalik, TwoContradictorySoft) {
  MaxSatInstance Inst;
  Inst.NumVars = 1;
  Inst.Soft.push_back({{mkLit(0)}, 1});
  Inst.Soft.push_back({{~mkLit(0)}, 1});
  auto R = solveFuMalik(Inst);
  ASSERT_EQ(R.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(R.Cost, 1u);
  EXPECT_EQ(R.FalsifiedSoft.size(), 1u);
}

TEST(FuMalik, HardUnsatDetected) {
  MaxSatInstance Inst;
  Inst.NumVars = 1;
  Inst.Hard.push_back({mkLit(0)});
  Inst.Hard.push_back({~mkLit(0)});
  Inst.Soft.push_back({{mkLit(0)}, 1});
  auto R = solveFuMalik(Inst);
  EXPECT_EQ(R.Status, MaxSatStatus::HardUnsat);
}

TEST(FuMalik, HardForcesSoftViolation) {
  // Hard: x. Soft: ~x, y, ~y. Optimum 2 (must falsify ~x and one of y/~y).
  MaxSatInstance Inst;
  Inst.NumVars = 2;
  Inst.Hard.push_back({mkLit(0)});
  Inst.Soft.push_back({{~mkLit(0)}, 1});
  Inst.Soft.push_back({{mkLit(1)}, 1});
  Inst.Soft.push_back({{~mkLit(1)}, 1});
  auto R = solveFuMalik(Inst);
  ASSERT_EQ(R.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(R.Cost, 2u);
}

TEST(FuMalik, SelectorLocalizationShape) {
  // The BugAssist shape: hard statement clauses guarded by selectors,
  // contradictory data; MaxSAT must falsify exactly the "buggy" selector.
  // Statements: s1: x=1, s2: y=x+1 (as y=2), s3: assert y==3 (hard).
  // Encoded propositionally: sel1 -> x1, sel2 -> (x1 <-> y2false...)
  // Simplified Boolean model: hard: (y3), sel2 -> (y3 <-> x... )
  // Use: hard (a), soft sel1 with sel1->(b), soft sel2 with sel2->(b -> ~a).
  // Then sel1 & sel2 & a is UNSAT; dropping either selector fixes it; the
  // optimum cost is 1.
  MaxSatInstance Inst;
  Inst.NumVars = 4; // a=0 b=1 sel1=2 sel2=3
  Lit A = mkLit(0), B = mkLit(1), S1 = mkLit(2), S2 = mkLit(3);
  Inst.Hard.push_back({A});
  Inst.Hard.push_back({~S1, B});
  Inst.Hard.push_back({~S2, ~B, ~A});
  Inst.Soft.push_back({{S1}, 1});
  Inst.Soft.push_back({{S2}, 1});
  auto R = solveFuMalik(Inst);
  ASSERT_EQ(R.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(R.Cost, 1u);
  ASSERT_EQ(R.FalsifiedSoft.size(), 1u);
}

TEST(LinearSearch, MatchesSmallOptimum) {
  MaxSatInstance Inst;
  Inst.NumVars = 2;
  Inst.Hard.push_back({mkLit(0)});
  Inst.Soft.push_back({{~mkLit(0)}, 7});
  Inst.Soft.push_back({{mkLit(1)}, 2});
  auto R = solveLinear(Inst);
  ASSERT_EQ(R.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(R.Cost, 7u);
}

TEST(LinearSearch, WeightedPrefersCheaperViolation) {
  // x and ~x soft with weights 1 and 10: falsify the weight-1 clause.
  MaxSatInstance Inst;
  Inst.NumVars = 1;
  Inst.Soft.push_back({{mkLit(0)}, 1});
  Inst.Soft.push_back({{~mkLit(0)}, 10});
  auto R = solveLinear(Inst);
  ASSERT_EQ(R.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(R.Cost, 1u);
  ASSERT_EQ(R.FalsifiedSoft.size(), 1u);
  EXPECT_EQ(R.FalsifiedSoft[0], 0u);
}

TEST(LinearSearch, HardUnsat) {
  MaxSatInstance Inst;
  Inst.NumVars = 1;
  Inst.Hard.push_back({mkLit(0)});
  Inst.Hard.push_back({~mkLit(0)});
  auto R = solveLinear(Inst);
  EXPECT_EQ(R.Status, MaxSatStatus::HardUnsat);
}

TEST(LinearSearch, LoopWeightShape) {
  // The Section 5.2 shape: iterations kappa=1..3 get weights
  // alpha+eta-kappa = 4,3,2 (alpha=2, eta=3). Hard constraints force at
  // least one iteration selector off; the solver must drop the *latest*
  // (cheapest) iteration.
  MaxSatInstance Inst;
  Inst.NumVars = 3;
  Inst.Hard.push_back({~mkLit(0), ~mkLit(1), ~mkLit(2)});
  Inst.Soft.push_back({{mkLit(0)}, 4});
  Inst.Soft.push_back({{mkLit(1)}, 3});
  Inst.Soft.push_back({{mkLit(2)}, 2});
  auto R = solveLinear(Inst);
  ASSERT_EQ(R.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(R.Cost, 2u);
  ASSERT_EQ(R.FalsifiedSoft.size(), 1u);
  EXPECT_EQ(R.FalsifiedSoft[0], 2u);
}

// --- randomized differential properties -------------------------------------

struct MaxSatRandomCase {
  int NumVars;
  int NumHard;
  int NumSoft;
  bool Weighted;
  uint64_t Seed;
};

class MaxSatRandomTest : public ::testing::TestWithParam<MaxSatRandomCase> {};

TEST_P(MaxSatRandomTest, MatchesBruteForce) {
  const auto &P = GetParam();
  Rng R(P.Seed);
  for (int Round = 0; Round < 25; ++Round) {
    MaxSatInstance Inst =
        randomInstance(R, P.NumVars, P.NumHard, P.NumSoft, P.Weighted);
    uint64_t Expected = bruteForceOptimum(Inst);

    auto Lin = solveLinear(Inst);
    if (Expected == UINT64_MAX) {
      EXPECT_EQ(Lin.Status, MaxSatStatus::HardUnsat);
    } else {
      ASSERT_EQ(Lin.Status, MaxSatStatus::Optimum) << "round " << Round;
      EXPECT_EQ(Lin.Cost, Expected) << "linear, round " << Round;
    }

    if (!P.Weighted) {
      auto FM = solveFuMalik(Inst);
      if (Expected == UINT64_MAX) {
        EXPECT_EQ(FM.Status, MaxSatStatus::HardUnsat);
      } else {
        ASSERT_EQ(FM.Status, MaxSatStatus::Optimum) << "round " << Round;
        EXPECT_EQ(FM.Cost, Expected) << "fu-malik, round " << Round;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSweep, MaxSatRandomTest,
    ::testing::Values(MaxSatRandomCase{5, 4, 6, false, 101},
                      MaxSatRandomCase{6, 8, 8, false, 102},
                      MaxSatRandomCase{7, 10, 10, false, 103},
                      MaxSatRandomCase{8, 12, 10, false, 104},
                      MaxSatRandomCase{5, 4, 6, true, 201},
                      MaxSatRandomCase{6, 8, 8, true, 202},
                      MaxSatRandomCase{7, 10, 10, true, 203},
                      MaxSatRandomCase{8, 12, 10, true, 204}));

// --- incremental engines vs. the seed (rebuild-per-round) semantics --------

TEST(Incremental, FuMalikMatchesSeedOnFixedInstances) {
  // Unique optimum: y is forced, so (~x \/ ~y) forces x false and the only
  // minimal CoMSS is soft clause 0.
  MaxSatInstance Inst;
  Inst.NumVars = 2;
  Inst.Hard.push_back({~mkLit(0), ~mkLit(1)});
  Inst.Hard.push_back({mkLit(1)});
  Inst.Soft.push_back({{mkLit(0)}, 1});
  Inst.Soft.push_back({{mkLit(1)}, 1});

  auto Inc = solveFuMalik(Inst);
  auto Ref = referenceSolveFuMalik(Inst);
  ASSERT_EQ(Inc.Status, MaxSatStatus::Optimum);
  ASSERT_EQ(Ref.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(Inc.Cost, Ref.Cost);
  EXPECT_EQ(Inc.FalsifiedSoft, Ref.FalsifiedSoft);
  EXPECT_EQ(Inc.FalsifiedSoft, std::vector<size_t>{0});
}

TEST(Incremental, LinearMatchesSeedOnFixedInstances) {
  MaxSatInstance Inst;
  Inst.NumVars = 3;
  Inst.Hard.push_back({~mkLit(0), ~mkLit(1), ~mkLit(2)});
  Inst.Soft.push_back({{mkLit(0)}, 4});
  Inst.Soft.push_back({{mkLit(1)}, 3});
  Inst.Soft.push_back({{mkLit(2)}, 2});

  auto Inc = solveLinear(Inst);
  auto Ref = referenceSolveLinear(Inst);
  ASSERT_EQ(Inc.Status, MaxSatStatus::Optimum);
  ASSERT_EQ(Ref.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(Inc.Cost, Ref.Cost);
  EXPECT_EQ(Inc.FalsifiedSoft, Ref.FalsifiedSoft);
}

TEST(Incremental, MatchesSeedCostOnRandomSweep) {
  Rng R(4242);
  for (int Round = 0; Round < 40; ++Round) {
    MaxSatInstance Inst = randomInstance(R, 7, 8, 9, Round % 2 == 1);
    auto RefL = referenceSolveLinear(Inst);
    auto IncL = solveLinear(Inst);
    ASSERT_EQ(IncL.Status, RefL.Status) << "round " << Round;
    if (RefL.Status == MaxSatStatus::Optimum) {
      EXPECT_EQ(IncL.Cost, RefL.Cost) << "linear, round " << Round;
    }
    if (Round % 2 == 0) {
      auto RefF = referenceSolveFuMalik(Inst);
      auto IncF = solveFuMalik(Inst);
      ASSERT_EQ(IncF.Status, RefF.Status) << "round " << Round;
      if (RefF.Status == MaxSatStatus::Optimum) {
        EXPECT_EQ(IncF.Cost, RefF.Cost) << "fu-malik, round " << Round;
      }
    }
  }
}

TEST(Incremental, SessionEnumerationMatchesRebuiltEnumeration) {
  // Drive one persistent session through blocked re-optimizations (the
  // CoMSS enumeration pattern) and check every step against the seed
  // engine re-run from scratch on the instance plus all blocking clauses.
  const int Length = 6;
  MaxSatInstance Inst;
  Inst.NumVars = (Length + 1) + Length;
  auto Y = [](int I) { return mkLit(I); };
  auto Sel = [](int I) { return mkLit(Length + I); };
  Inst.Hard.push_back({Y(0)});
  Inst.Hard.push_back({~Y(Length)});
  for (int I = 1; I <= Length; ++I) {
    Inst.Hard.push_back({~Sel(I), ~Y(I - 1), Y(I)});
    Inst.Hard.push_back({~Sel(I), Y(I - 1), ~Y(I)});
    Inst.Soft.push_back({{Sel(I)}, 1});
  }

  auto Session = makeFuMalikSession(Inst);
  MaxSatInstance Blocked = Inst; // accumulates beta for the reference
  for (int Step = 0; Step < Length + 1; ++Step) {
    MaxSatResult Inc = Session->solve();
    MaxSatResult Ref = referenceSolveFuMalik(Blocked);
    ASSERT_EQ(Inc.Status, Ref.Status) << "step " << Step;
    if (Inc.Status != MaxSatStatus::Optimum)
      break; // both exhausted together
    EXPECT_EQ(Inc.Cost, Ref.Cost) << "step " << Step;
    EXPECT_EQ(Inc.FalsifiedSoft.size(), Ref.FalsifiedSoft.size())
        << "step " << Step;
    ASSERT_FALSE(Inc.FalsifiedSoft.empty());
    Clause Beta;
    for (size_t I : Inc.FalsifiedSoft)
      Beta.push_back(Inst.Soft[I].Lits[0]);
    Session->addHardClause(Beta);
    Blocked.Hard.push_back(Beta);
  }
}

TEST(Incremental, LinearSessionSurvivesBlockingClauses) {
  // Weighted session: after each blocking clause the next-cheapest
  // violation must be found, with the bound re-tightened on the same
  // persistent counter (optima 1, then 5, then 9, then hard-UNSAT).
  MaxSatInstance Inst;
  Inst.NumVars = 3;
  Inst.Hard.push_back({~mkLit(0), ~mkLit(1), ~mkLit(2)});
  Inst.Soft.push_back({{mkLit(0)}, 1});
  Inst.Soft.push_back({{mkLit(1)}, 5});
  Inst.Soft.push_back({{mkLit(2)}, 9});

  auto Session = makeLinearSession(Inst);
  auto R1 = Session->solve();
  ASSERT_EQ(R1.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(R1.Cost, 1u);
  ASSERT_EQ(R1.FalsifiedSoft, std::vector<size_t>{0});

  Session->addHardClause({mkLit(0)}); // beta: statement 0 stays enabled
  auto R2 = Session->solve();
  ASSERT_EQ(R2.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(R2.Cost, 5u);
  ASSERT_EQ(R2.FalsifiedSoft, std::vector<size_t>{1});

  Session->addHardClause({mkLit(1)});
  auto R3 = Session->solve();
  ASSERT_EQ(R3.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(R3.Cost, 9u);
  ASSERT_EQ(R3.FalsifiedSoft, std::vector<size_t>{2});

  Session->addHardClause({mkLit(2)});
  auto R4 = Session->solve();
  EXPECT_EQ(R4.Status, MaxSatStatus::HardUnsat);
}

// --- anytime bounds under resource budgets -----------------------------------

namespace {

/// Cost of \p Model on \p Inst: sum of soft weights the model falsifies.
uint64_t modelCost(const MaxSatInstance &Inst,
                   const std::vector<LBool> &Model) {
  uint64_t Cost = 0;
  for (const SoftClause &S : Inst.Soft)
    if (!clauseSatisfied(S.Lits, Model))
      Cost += S.Weight;
  return Cost;
}

/// N contradictory soft pairs (x_i) / (~x_i), all weight 1: every model
/// costs exactly N, so the optimum is N and Fu-Malik needs N rounds.
MaxSatInstance contradictoryPairs(int N) {
  MaxSatInstance Inst;
  Inst.NumVars = N;
  for (int I = 0; I < N; ++I) {
    Inst.Soft.push_back({{mkLit(I)}, 1});
    Inst.Soft.push_back({{~mkLit(I)}, 1});
  }
  return Inst;
}

/// Appends PHP(Holes + 1, Holes) with ALL clauses soft (weight 1) on fresh
/// variables: its minimal relaxation costs exactly 1, but finding the core
/// requires the full exponential pigeonhole refutation.
void appendSoftPigeonhole(MaxSatInstance &Inst, int Holes) {
  int Base = Inst.NumVars;
  int Pigeons = Holes + 1;
  auto VarOf = [&](int P, int H) { return Base + P * Holes + H; };
  Inst.NumVars += Pigeons * Holes;
  for (int P = 0; P < Pigeons; ++P) {
    Clause C;
    for (int H = 0; H < Holes; ++H)
      C.push_back(mkLit(VarOf(P, H)));
    Inst.Soft.push_back({std::move(C), 1});
  }
  for (int H = 0; H < Holes; ++H)
    for (int P1 = 0; P1 < Pigeons; ++P1)
      for (int P2 = P1 + 1; P2 < Pigeons; ++P2)
        Inst.Soft.push_back(
            {{~mkLit(VarOf(P1, H)), ~mkLit(VarOf(P2, H))}, 1});
}

} // namespace

TEST(Anytime, OptimumCarriesTightBoundsAndWitness) {
  Rng R(9001);
  for (int Round = 0; Round < 15; ++Round) {
    MaxSatInstance Inst = randomInstance(R, 7, 6, 9, Round % 2 == 1);
    auto Res = solveLinear(Inst);
    if (Res.Status == MaxSatStatus::HardUnsat) {
      EXPECT_EQ(Res.LowerBound, UINT64_MAX);
      EXPECT_EQ(Res.UpperBound, UINT64_MAX);
      continue;
    }
    ASSERT_EQ(Res.Status, MaxSatStatus::Optimum);
    EXPECT_EQ(Res.LowerBound, Res.Cost);
    EXPECT_EQ(Res.UpperBound, Res.Cost);
    EXPECT_EQ(Res.BestModel, Res.Model);
  }
}

TEST(Anytime, BudgetedFuMalikReturnsSoundBoundsAndRecovers) {
  // 12 contradictory pairs (each core found in a couple of propagations)
  // plus a soft pigeonhole whose single core needs the full exponential
  // refutation. With a 1-conflict cap the cheap pair rounds finish before
  // the amortized poll (every 1024 search iterations) first fires, then
  // the pigeonhole round blows well past it: the session must hand back
  // Unknown with a sound bracket and a hard-satisfying witness.
  const uint64_t Pairs = 12, Optimum = Pairs + 1;
  MaxSatInstance Inst = contradictoryPairs(static_cast<int>(Pairs));
  appendSoftPigeonhole(Inst, /*Holes=*/6);
  auto Session = makeFuMalikSession(Inst);
  Solver::Budget B;
  B.MaxConflicts = 1;
  Session->setBudget(B);
  MaxSatResult R = Session->solve();
  ASSERT_EQ(R.Status, MaxSatStatus::Unknown);
  EXPECT_GT(R.LowerBound, 0u) << "some rounds should complete before poll";
  EXPECT_LE(R.LowerBound, Optimum);
  ASSERT_NE(R.UpperBound, UINT64_MAX) << "harvest produced no witness";
  ASSERT_FALSE(R.BestModel.empty());
  EXPECT_EQ(modelCost(Inst, R.BestModel), R.UpperBound);
  EXPECT_GE(R.UpperBound, Optimum);

  // clearBudget re-arms the SAME session; it must then reach the optimum
  // inside the bracket it reported while budgeted.
  Session->clearBudget();
  MaxSatResult R2 = Session->solve();
  ASSERT_EQ(R2.Status, MaxSatStatus::Optimum);
  EXPECT_EQ(R2.Cost, Optimum);
  EXPECT_GE(R2.Cost, R.LowerBound);
  EXPECT_LE(R2.Cost, R.UpperBound);
}

TEST(Anytime, BudgetedBoundsBracketTheTrueOptimumOnRandomSweep) {
  // Soundness of the anytime contract against the brute-force oracle:
  // whatever a budget-starved session reports, the true optimum must lie
  // within [LowerBound, UpperBound] and BestModel must witness UpperBound.
  Rng R(777);
  int Exhausted = 0;
  for (int Round = 0; Round < 20; ++Round) {
    MaxSatInstance Inst = randomInstance(R, 7, 8, 9, Round % 2 == 1);
    uint64_t Expected = bruteForceOptimum(Inst);
    auto Session = makeMaxSatSession(Inst, /*Weighted=*/Round % 2 == 1,
                                     /*ConflictBudget=*/0, Solver::Options(),
                                     /*Canonical=*/true);
    // An already-expired deadline: the optimizing search stops at its very
    // first poll, so only the harvest pass (which runs budget-free) can
    // contribute a witness.
    Solver::Budget B;
    B.setDeadlineIn(0.0);
    Session->setBudget(B);
    MaxSatResult Res = Session->solve();
    switch (Res.Status) {
    case MaxSatStatus::Optimum:
      EXPECT_EQ(Res.Cost, Expected) << "round " << Round;
      break;
    case MaxSatStatus::HardUnsat:
      EXPECT_EQ(Expected, UINT64_MAX) << "round " << Round;
      break;
    case MaxSatStatus::Unknown:
      ++Exhausted;
      EXPECT_LE(Res.LowerBound, Expected) << "round " << Round;
      EXPECT_GE(Res.UpperBound, Expected) << "round " << Round;
      if (Expected == UINT64_MAX) {
        // Hard part unsatisfiable: no witness can exist.
        EXPECT_EQ(Res.UpperBound, UINT64_MAX) << "round " << Round;
        EXPECT_TRUE(Res.BestModel.empty()) << "round " << Round;
      } else if (Res.UpperBound != UINT64_MAX) {
        ASSERT_FALSE(Res.BestModel.empty()) << "round " << Round;
        EXPECT_EQ(modelCost(Inst, Res.BestModel), Res.UpperBound)
            << "round " << Round;
      }
      break;
    }
  }
  // The sweep is only meaningful if the budget actually bit somewhere.
  EXPECT_GT(Exhausted, 0) << "no round exhausted its budget";
}

TEST(MaxSat, FalsifiedSoftConsistentWithCost) {
  Rng R(555);
  for (int Round = 0; Round < 20; ++Round) {
    MaxSatInstance Inst = randomInstance(R, 7, 6, 9, true);
    auto Res = solveLinear(Inst);
    if (Res.Status != MaxSatStatus::Optimum)
      continue;
    uint64_t Sum = 0;
    for (size_t I : Res.FalsifiedSoft)
      Sum += Inst.Soft[I].Weight;
    EXPECT_EQ(Sum, Res.Cost);
    // Every clause not reported falsified must be satisfied by the model.
    for (size_t I = 0; I < Inst.Soft.size(); ++I) {
      bool Reported = std::find(Res.FalsifiedSoft.begin(),
                                Res.FalsifiedSoft.end(),
                                I) != Res.FalsifiedSoft.end();
      EXPECT_EQ(!clauseSatisfied(Inst.Soft[I].Lits, Res.Model), Reported);
    }
  }
}
