//===- localize_test.cpp - Algorithm 1 end-to-end tests -------------------------===//
//
// Part of BugAssist-Repro (Jose & Majumdar, PLDI 2011 reproduction).
//
//===----------------------------------------------------------------------===//

#include "core/BugAssist.h"

#include "core/Ranking.h"
#include "lang/Sema.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace bugassist;

namespace {

std::unique_ptr<Program> compile(std::string_view Src) {
  DiagEngine Diags;
  auto P = parseAndAnalyze(Src, Diags);
  EXPECT_TRUE(P != nullptr) << Diags.render();
  return P;
}

bool containsLine(const std::vector<uint32_t> &Lines, uint32_t L) {
  return std::find(Lines.begin(), Lines.end(), L) != Lines.end();
}

// The paper's Program 1 (Section 2), with source lines:
//  1 int Array[3];
//  2 int main(int index) {
//  3   if (index != 1)
//  4     index = 2;
//  5   else
//  6     index = index + 2;
//  7   int i = index;
//  8   assert(i >= 0 && i < 3);
//  9   return Array[i];
// 10 }
const char *Program1 = "int Array[3];\n"
                       "int main(int index) {\n"
                       "  if (index != 1)\n"
                       "    index = 2;\n"
                       "  else\n"
                       "    index = index + 2;\n"
                       "  int i = index;\n"
                       "  assert(i >= 0 && i < 3);\n"
                       "  return Array[i];\n"
                       "}\n";

} // namespace

TEST(Localize, MotivatingExampleFindsTheBugLine) {
  auto P = compile(Program1);
  BugAssistDriver Driver(*P, "main");

  // Counterexample generation must produce the index == 1 failing test.
  auto Cex = Driver.findCounterexample(Spec{});
  ASSERT_TRUE(Cex.has_value());
  EXPECT_EQ((*Cex)[0].Scalar, 1);

  LocalizationReport R = Driver.localize(*Cex, Spec{});
  ASSERT_FALSE(R.Diagnoses.empty());

  // Every diagnosis is a singleton: one line suffices for a fix.
  for (const Diagnosis &D : R.Diagnoses)
    EXPECT_EQ(D.Lines.size(), 1u);

  // The actual bug (line 6, index = index + 2) and the branch condition
  // (line 3) are both reported -- the paper's lines 4 and 1 respectively.
  EXPECT_TRUE(containsLine(R.AllLines, 6)) << "bug line missing";
  EXPECT_TRUE(containsLine(R.AllLines, 3)) << "branch line missing";

  // Localization beats the backward slice: the then-branch assignment
  // (line 4), which is in no failing trace and no CoMSS, is not blamed.
  EXPECT_FALSE(containsLine(R.AllLines, 4));

  // Enumeration terminates with "no more suspects".
  EXPECT_TRUE(R.Exhausted);
}

TEST(Localize, EnumerationBlocksPreviousDiagnoses) {
  auto P = compile(Program1);
  BugAssistDriver Driver(*P, "main");
  InputVector Fail{InputValue::scalar(1)};
  LocalizationReport R = Driver.localize(Fail, Spec{});
  // Each diagnosis distinct.
  for (size_t I = 0; I < R.Diagnoses.size(); ++I)
    for (size_t J = I + 1; J < R.Diagnoses.size(); ++J)
      EXPECT_NE(R.Diagnoses[I].Lines, R.Diagnoses[J].Lines);
}

TEST(Localize, PassingTestYieldsNoDiagnoses) {
  auto P = compile(Program1);
  BugAssistDriver Driver(*P, "main");
  InputVector Pass{InputValue::scalar(0)};
  LocalizationReport R = Driver.localize(Pass, Spec{});
  EXPECT_TRUE(R.Diagnoses.empty());
  EXPECT_TRUE(R.Exhausted);
}

TEST(Localize, GoldenOutputSpec) {
  // abs() with a classic negation bug on line 2: returns x for negatives.
  const char *Src = "int main(int x) {\n"
                    "  if (x < 0) return x;\n"
                    "  return x;\n"
                    "}\n";
  auto P = compile(Src);
  BugAssistDriver Driver(*P, "main");
  Spec S;
  S.CheckObligations = false;
  S.GoldenReturn = 5; // golden: abs(-5) == 5
  InputVector Fail{InputValue::scalar(-5)};
  LocalizationReport R = Driver.localize(Fail, S);
  ASSERT_FALSE(R.Diagnoses.empty());
  // Fixable at the return (line 2) or at the branch condition (line 2 as
  // well); line 2 must be blamed.
  EXPECT_TRUE(containsLine(R.AllLines, 2));
}

TEST(Localize, MultiLineDiagnosisWhenSingleLineCannotFix) {
  // Two independent wrong constants, both feeding a hard spec: no single
  // line can satisfy assert(a + b == 4) given a=9, b=9 -- wait, changing
  // just 'a' to -5 fixes it. Force a genuinely conjoint failure instead:
  // the spec pins each variable separately.
  const char *Src = "int main(int x) {\n"
                    "  int a = 9;\n"
                    "  int b = 9;\n"
                    "  assert(a == 1 && b == 2);\n"
                    "  return a + b;\n"
                    "}\n";
  auto P = compile(Src);
  BugAssistDriver Driver(*P, "main");
  InputVector Fail{InputValue::scalar(0)};
  LocalizationReport R = Driver.localize(Fail, Spec{});
  ASSERT_FALSE(R.Diagnoses.empty());
  // The only fix changes both line 2 and line 3 simultaneously.
  EXPECT_EQ(R.Diagnoses[0].Lines.size(), 2u);
  EXPECT_TRUE(containsLine(R.Diagnoses[0].Lines, 2));
  EXPECT_TRUE(containsLine(R.Diagnoses[0].Lines, 3));
}

TEST(Localize, WrongOperatorLocalized) {
  // Off-by-one comparison: should be x < 3 (lines chosen so the bug is on
  // line 3).
  const char *Src = "int main(int x) {\n"
                    "  assume(x >= 0 && x <= 3);\n"
                    "  bool ok = x <= 3;\n"
                    "  int y = ok ? x : 0;\n"
                    "  assert(y < 3);\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  BugAssistDriver Driver(*P, "main");
  auto Cex = Driver.findCounterexample(Spec{});
  ASSERT_TRUE(Cex.has_value());
  EXPECT_EQ((*Cex)[0].Scalar, 3);
  LocalizationReport R = Driver.localize(*Cex, Spec{});
  ASSERT_FALSE(R.Diagnoses.empty());
  EXPECT_TRUE(containsLine(R.AllLines, 3));
}

TEST(Localize, TrustedFunctionNeverBlamed) {
  const char *Src = "int lib(int v) { return v + 1; }\n"
                    "int main(int x) {\n"
                    "  int y = lib(x);\n"
                    "  assert(y == x);\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  UnrollOptions UO;
  UO.TrustedFunctions.insert("lib");
  BugAssistDriver Driver(*P, "main", UO);
  InputVector Fail{InputValue::scalar(0)};
  LocalizationReport R = Driver.localize(Fail, Spec{});
  ASSERT_FALSE(R.Diagnoses.empty());
  // Line 1 is inside the trusted library: it must never appear.
  EXPECT_FALSE(containsLine(R.AllLines, 1));
  // The call-site binding (line 3) can be blamed.
  EXPECT_TRUE(containsLine(R.AllLines, 3));
}

TEST(Localize, LoopBugLocalized) {
  // Sum of 1..n with the accumulation statement buggy (s + i + i).
  const char *Src = "int main(int n) {\n"
                    "  assume(n == 3);\n"
                    "  int s = 0;\n"
                    "  int i = 1;\n"
                    "  while (i <= n) {\n"
                    "    s = s + i + i;\n"
                    "    i = i + 1;\n"
                    "  }\n"
                    "  assert(s == 6);\n"
                    "  return s;\n"
                    "}\n";
  auto P = compile(Src);
  UnrollOptions UO;
  UO.MaxLoopUnwind = 5;
  BugAssistDriver Driver(*P, "main", UO);
  InputVector Fail{InputValue::scalar(3)};
  LocalizationReport R = Driver.localize(Fail, Spec{});
  ASSERT_FALSE(R.Diagnoses.empty());
  EXPECT_TRUE(containsLine(R.AllLines, 6)) << "accumulation line missing";
}

TEST(Localize, MaxDiagnosesRespected) {
  auto P = compile(Program1);
  BugAssistDriver Driver(*P, "main");
  LocalizeOptions LO;
  LO.MaxDiagnoses = 1;
  LocalizationReport R =
      Driver.localize({InputValue::scalar(1)}, Spec{}, LO);
  EXPECT_EQ(R.Diagnoses.size(), 1u);
  EXPECT_FALSE(R.Exhausted);
}

TEST(Localize, WeightedAndFuMalikAgreeOnOptimalCost) {
  auto P = compile(Program1);
  BugAssistDriver Driver(*P, "main");
  InputVector Fail{InputValue::scalar(1)};
  LocalizeOptions FM;
  FM.MaxDiagnoses = 1;
  LocalizeOptions LS = FM;
  LS.Weighted = true;
  LocalizationReport A = Driver.localize(Fail, Spec{}, FM);
  LocalizationReport B = Driver.localize(Fail, Spec{}, LS);
  ASSERT_FALSE(A.Diagnoses.empty());
  ASSERT_FALSE(B.Diagnoses.empty());
  EXPECT_EQ(A.Diagnoses[0].Cost, B.Diagnoses[0].Cost);
}

TEST(Ranking, FrequencyAcrossFailingTests) {
  // Buggy clamp: upper bound checked with <= instead of < on line 2; all
  // failing tests blame line 2, so it must rank first.
  const char *Src = "int main(int x) {\n"
                    "  bool inRange = x >= 0 && x <= 10;\n"
                    "  int y = inRange ? x : 0;\n"
                    "  assert(y < 10);\n"
                    "  return y;\n"
                    "}\n";
  auto P = compile(Src);
  BugAssistDriver Driver(*P, "main");
  std::vector<InputVector> Fails = {{InputValue::scalar(10)}};
  RankingReport R = rankSuspects(Driver.formula(), Fails, Spec{});
  ASSERT_FALSE(R.Ranked.empty());
  EXPECT_EQ(R.Runs, 1u);
  bool Line2Ranked = false;
  for (const RankedLine &RL : R.Ranked)
    if (RL.Line == 2) {
      Line2Ranked = true;
      EXPECT_EQ(RL.Hits, 1u);
      EXPECT_DOUBLE_EQ(RL.Frequency, 1.0);
    }
  EXPECT_TRUE(Line2Ranked);
}
